"""TNT001 positives: clocks, environment reads, ``id()`` and unordered
iteration flowing into cache keys, fingerprints and report fields."""

import os

from ..obs import perf_seconds


def artifact_key(*parts):
    return "|".join(str(p) for p in parts)


def fingerprint(payload):
    return hash(payload)


def clock_into_key(settings):
    stamp = perf_seconds()
    return artifact_key(settings, stamp)


def env_into_fingerprint():
    host = os.getenv("HOSTNAME", "")
    return fingerprint(host)


def identity_into_key(obj):
    return artifact_key(id(obj))


class Builder:
    def __init__(self, cache):
        self.cache = cache

    def stamp(self):
        # The taint travels through the helper's return summary.
        return perf_seconds()

    def build(self, kind):
        key = self.stamp()
        return self.cache.put(kind, key)


def order_into_report(items):
    report = {}
    report["raw"] = list(set(items))
    return report
