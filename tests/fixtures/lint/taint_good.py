"""TNT001 negatives: clock reads that stay in observability-land,
sorted (sanitized) iteration, and deterministic keys."""

import os

from ..obs import perf_seconds


def artifact_key(*parts):
    return "|".join(str(p) for p in parts)


def deterministic_key(settings, seed):
    return artifact_key(settings, seed)


def clock_into_log():
    # Timing a stage is fine: the value never reaches a key, cost,
    # fingerprint or report field.
    started = perf_seconds()
    elapsed = perf_seconds() - started
    print(elapsed)
    return None


def env_into_plain_call():
    host = os.getenv("HOSTNAME", "")
    print(host)
    return host


def sorted_order_into_report(items):
    report = {}
    report["ordered"] = sorted(set(items))
    return report


class Builder:
    def __init__(self, cache):
        self.cache = cache

    def build(self, kind, seed):
        key = artifact_key(kind, seed)
        return self.cache.put(kind, key)
