"""Exempt module: the sanctioned wrapper may touch numpy.random."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)
