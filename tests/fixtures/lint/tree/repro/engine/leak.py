"""Non-exempt sibling: the same patterns are findings here."""

import numpy as np
import time


def leak(seed):
    return np.random.default_rng(seed), time.time()
