"""Exempt module: the observability layer may read the wall clock."""

import time


def wall_time():
    return time.time()
