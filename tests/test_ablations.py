"""Ablation drivers run end-to-end at a tiny scale."""

import pytest

from repro.bench import ablations


@pytest.fixture(autouse=True)
def tiny_ablation_scale(monkeypatch):
    monkeypatch.setenv("REPRO_ABLATION_SCALE", "0.04")
    monkeypatch.setenv("REPRO_ABLATION_WORKLOAD", "6")


def test_budget_sweep_runs():
    result = ablations.ablation_budget()
    assert result.experiment == "ablation-budget"
    assert "unlimited" in result.text
    assert set(result.data) == {"quarter", "paper", "unlimited"}


def test_oracle_ablation_runs():
    result = ablations.ablation_oracle_statistics()
    assert "1C" in result.data
    assert "oracle" in result.text


def test_skew_sweep_runs():
    result = ablations.ablation_skew()
    assert set(result.data) == {0.0, 0.5, 1.0}
    for ratio in result.data.values():
        assert ratio > 0


def test_workload_size_sweep_runs():
    result = ablations.ablation_workload_size()
    assert 3 in result.data
    assert "workload size" in result.text
