"""Analysis framework: CFC curves, goals, binning, ratios, dominance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.binning import ratio_histogram, time_histogram
from repro.analysis.cfc import (
    CumulativeFrequencyCurve,
    crossover,
    dominates,
    log_grid,
)
from repro.analysis.goals import StepGoal, example2_goal, improvement_ratio
from repro.analysis.measurements import WorkloadMeasurement
from repro.analysis.ratios import air, paired_ratios, ratio_summary


def measurement(times, timeouts=None, timeout=1800.0, name="X"):
    times = np.asarray(times, dtype=np.float64)
    if timeouts is None:
        timeouts = np.zeros(len(times), dtype=bool)
    return WorkloadMeasurement(
        workload="W",
        configuration=name,
        elapsed=times,
        timed_out=np.asarray(timeouts, dtype=bool),
        timeout=timeout,
    )


def test_cfc_basic():
    m = measurement([1, 10, 100, 1000])
    curve = CumulativeFrequencyCurve(m)
    assert curve([0.5])[0] == 0.0
    assert curve([1.5])[0] == 0.25
    assert curve([100.5])[0] == 0.75
    assert curve([5000])[0] == 1.0


def test_cfc_timeouts_never_complete():
    m = measurement([1, 10, 1800, 1800], [False, False, True, True])
    curve = CumulativeFrequencyCurve(m)
    assert curve([1e9])[0] == 0.5


def test_cfc_quantile():
    m = measurement([1, 2, 3, 4])
    curve = CumulativeFrequencyCurve(m)
    assert curve.quantile(0.5) == 2
    assert curve.quantile(1.0) == 4
    m2 = measurement([1, 1800], [False, True])
    assert CumulativeFrequencyCurve(m2).quantile(0.9) == float("inf")


def test_dominance_and_crossover():
    fast = CumulativeFrequencyCurve(measurement([1, 2, 3, 4], name="fast"))
    slow = CumulativeFrequencyCurve(
        measurement([10, 20, 30, 40], name="slow")
    )
    grid = log_grid(0.5, 100, points_per_decade=4)
    assert dominates(fast, slow, grid)
    assert not dominates(slow, fast, grid)
    assert not crossover(fast, slow, grid)
    mixed = CumulativeFrequencyCurve(
        measurement([0.5, 0.6, 90, 95], name="mixed")
    )
    assert not dominates(mixed, slow, grid)
    assert crossover(mixed, slow, grid)


def test_step_goal_validation_and_shape():
    goal = example2_goal()
    assert goal([5])[0] == 0.0
    assert goal([10])[0] == pytest.approx(0.10)
    assert goal([120])[0] == pytest.approx(0.50)
    assert goal([1800])[0] == pytest.approx(0.90)
    with pytest.raises(ValueError):
        StepGoal(steps=((60, 0.5), (10, 0.1)))
    with pytest.raises(ValueError):
        StepGoal(steps=((10, 0.5), (60, 0.1)))


def test_goal_satisfaction():
    goal = example2_goal()
    good = CumulativeFrequencyCurve(
        measurement([1] * 20 + [30] * 60 + [100] * 20)
    )
    assert goal.satisfied_by(good)
    assert goal.margin(good) > 0
    bad = CumulativeFrequencyCurve(
        measurement([1800] * 100, [True] * 100)
    )
    assert not goal.satisfied_by(bad)
    assert goal.margin(bad) < 0


def test_time_histogram_bins_and_timeout_bin():
    m = measurement(
        [1, 2, 5, 20, 200, 1800, 1800],
        [False] * 5 + [True, True],
    )
    histogram = time_histogram(m)
    assert histogram.labels[-1] == "t_out"
    assert histogram.counts[-1] == 2
    assert histogram.total == 7
    assert int(sum(histogram.counts)) == 7
    assert histogram.cumulative()[-1] == pytest.approx(1.0)


def test_ratio_histogram_clamps():
    hist = ratio_histogram([0.0001, 0.5, 1, 8, 120, 1e9])
    assert hist.total == 6
    assert hist.counts[0] >= 1       # tiny ratios clamp low
    assert hist.counts[-1] >= 1      # huge ratios clamp high


def test_paired_ratios_and_timeout_dropping():
    a = measurement([10, 100, 1800], [False, False, True])
    b = measurement([1, 10, 1], [False, False, False])
    ratios = air(a, b)
    assert ratios.tolist() == [10.0, 10.0]
    with pytest.raises(ValueError):
        paired_ratios(a, measurement([1]))


def test_ratio_summary_counts():
    summary = ratio_summary([150, 120, 15, 1.0, 0.9, 0.1])
    assert summary["x100_or_more"] == 2
    assert summary["x10_to_100"] == 1
    assert summary["about_1"] == 2
    assert summary["degraded"] == 1


def test_lower_bound_total():
    m = measurement([10, 20, 1800, 1800], [False, False, True, True])
    assert m.completed_total() == 30
    assert m.lower_bound_total() == 30 + 2 * 1800
    fast = measurement([10, 20, 30, 40])
    assert improvement_ratio(m, fast) == pytest.approx(3630 / 100)


@settings(max_examples=50, deadline=None)
@given(
    times=st.lists(
        st.floats(0.01, 1e4, allow_nan=False), min_size=1, max_size=200
    )
)
def test_property_cfc_monotone_and_bounded(times):
    curve = CumulativeFrequencyCurve(measurement(times))
    grid = log_grid(0.001, 1e5, points_per_decade=3)
    values = curve(grid)
    assert np.all(np.diff(values) >= 0)
    assert np.all((0 <= values) & (values <= 1))
    assert values[-1] == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(
    times=st.lists(st.floats(0.1, 1000), min_size=2, max_size=100),
    factor=st.floats(1.5, 50),
)
def test_property_uniform_speedup_dominates(times, factor):
    """Scaling every query down by a constant factor dominates."""
    slow = CumulativeFrequencyCurve(measurement(times, name="slow"))
    fast = CumulativeFrequencyCurve(
        measurement([t / factor for t in times], name="fast")
    )
    grid = log_grid(0.01, 2000, points_per_decade=4)
    assert not dominates(slow, fast, grid)
    assert np.all(fast(grid) >= slow(grid))
