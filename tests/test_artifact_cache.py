"""ArtifactCache: memory/disk behavior and warm BenchContext reuse."""

import threading

import numpy as np

from repro.bench.context import BenchContext, BenchSettings
from repro.runtime.artifacts import ArtifactCache, StageTimings, artifact_key


def test_memory_roundtrip_without_directory():
    cache = ArtifactCache(directory=None)
    key = artifact_key("a", 1.0)
    assert cache.get("kind", key) is None
    cache.put("kind", key, {"x": 1})
    assert cache.get("kind", key) == {"x": 1}
    assert not cache.persistent
    snap = cache.snapshot()
    assert snap["memory_hits"] == 1
    assert snap["misses"] == 1


def test_get_or_build_builds_once():
    cache = ArtifactCache(directory=None)
    calls = []

    def builder():
        calls.append(1)
        return 42

    key = artifact_key("expensive")
    assert cache.get_or_build("kind", key, builder) == 42
    assert cache.get_or_build("kind", key, builder) == 42
    assert len(calls) == 1


def test_disk_persistence_across_instances(tmp_path):
    first = ArtifactCache(tmp_path)
    key = artifact_key("measurement", "A", "NREF2J")
    value = {"elapsed": np.arange(5.0)}
    first.put("measurement", key, value)

    second = ArtifactCache(tmp_path)      # a fresh process, effectively
    loaded = second.get("measurement", key)
    assert np.array_equal(loaded["elapsed"], value["elapsed"])
    assert second.snapshot()["disk_hits"] == 1
    assert second.contains("measurement", key)


def test_unpicklable_artifacts_degrade_to_memory_only(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = artifact_key("lock")
    cache.put("kind", key, threading.Lock())      # not picklable
    assert cache.get("kind", key) is not None     # memory still works
    fresh = ArtifactCache(tmp_path)
    assert fresh.get("kind", key) is None         # nothing hit the disk


def test_cache_dir_env_knob(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache = ArtifactCache()
    assert cache.persistent
    assert str(cache.directory) == str(tmp_path)
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert not ArtifactCache().persistent


def test_stage_timings_accumulate():
    timings = StageTimings()
    with timings.stage("build"):
        pass
    with timings.stage("build"):
        pass
    timings.add("measure", 1.5)
    snap = timings.snapshot()
    assert snap["build"]["count"] == 2
    assert snap["measure"]["seconds"] == 1.5
    assert "build" in timings.report()


def test_bench_context_warm_start_from_disk(tmp_path):
    settings = BenchSettings(scale=0.03, workload_size=5)
    cold = BenchContext(settings, artifacts=ArtifactCache(tmp_path))
    cold_m = cold.measure("A", "NREF2J", "P")

    warm = BenchContext(settings, artifacts=ArtifactCache(tmp_path))
    warm_m = warm.measure("A", "NREF2J", "P")
    assert np.array_equal(cold_m.elapsed, warm_m.elapsed)
    assert np.array_equal(cold_m.timed_out, warm_m.timed_out)
    # The warm context answered from disk without rebuilding anything.
    assert warm.artifacts.snapshot()["disk_hits"] >= 1
    assert "measure_workload" not in warm.timings.snapshot()


def test_bench_context_key_isolation(tmp_path):
    """Different settings must never share artifact entries."""
    a = BenchContext(
        BenchSettings(scale=0.03, workload_size=5),
        artifacts=ArtifactCache(tmp_path),
    )
    b = BenchContext(
        BenchSettings(scale=0.03, workload_size=3),
        artifacts=ArtifactCache(tmp_path),
    )
    wa = a.workload("A", "NREF2J")
    wb = b.workload("A", "NREF2J")
    assert len(wa) == 5
    assert len(wb) == 3


def test_bench_context_stats_report_mentions_caches():
    ctx = BenchContext(BenchSettings(scale=0.03, workload_size=5))
    ctx.measure("A", "NREF2J", "P")
    report = ctx.stats_report()
    assert "bench stage timings" in report
    assert "artifact cache" in report
    assert "plan cache" in report
