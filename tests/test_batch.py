"""Batch utilities: masks, takes, weights, code factorization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor.batch import (
    Batch,
    combine_codes,
    factorize,
    join_codes,
)


def make_batch(n=5, weights=None):
    return Batch(
        columns={
            "t.a": np.arange(n),
            "t.b": np.array([f"v{i % 2}" for i in range(n)], dtype=object),
        },
        widths={"t.a": 8, "t.b": 4},
        weights=weights,
    )


def test_rows_and_width():
    batch = make_batch(5)
    assert batch.rows == 5
    assert batch.row_width == 8 + 4 + 8
    assert Batch(columns={}).rows == 0


def test_mask_and_take():
    batch = make_batch(6, weights=np.arange(6, dtype=np.float64))
    masked = batch.mask(np.array([True, False] * 3))
    assert masked.rows == 3
    assert masked.columns["t.a"].tolist() == [0, 2, 4]
    assert masked.weights.tolist() == [0.0, 2.0, 4.0]

    taken = batch.take(np.array([5, 5, 0]))
    assert taken.columns["t.a"].tolist() == [5, 5, 0]
    assert taken.weights.tolist() == [5.0, 5.0, 0.0]


def test_weight_array_defaults_to_ones():
    batch = make_batch(4)
    assert batch.weight_array().tolist() == [1.0] * 4


def test_factorize_dense_codes():
    codes = factorize(np.array(["b", "a", "b", "c"], dtype=object))
    assert codes.max() == 2
    assert codes[0] == codes[2]
    assert len(set(codes.tolist())) == 3


def test_combine_codes_joint_groups():
    a = factorize(np.array([0, 0, 1, 1]))
    b = factorize(np.array([0, 1, 0, 1]))
    combined = combine_codes([a, b])
    assert len(set(combined.tolist())) == 4


def test_join_codes_equality_semantics():
    left = [np.array(["x", "y", "z"], dtype=object)]
    right = [np.array(["y", "y", "w"], dtype=object)]
    lc, rc = join_codes(left, right)
    assert lc[1] == rc[0] == rc[1]
    assert lc[0] not in set(rc.tolist())


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(st.integers(0, 10), min_size=1, max_size=50),
    right=st.lists(st.integers(0, 10), min_size=1, max_size=50),
)
def test_property_join_codes_match_values(left, right):
    """Code equality across sides is exactly value equality."""
    lc, rc = join_codes(
        [np.array(left)], [np.array(right)]
    )
    for i, lv in enumerate(left):
        for j, rv in enumerate(right):
            assert (lc[i] == rc[j]) == (lv == rv)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 80),
    cols=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_property_combine_codes_bijective_on_tuples(rows, cols, seed):
    rng = np.random.default_rng(seed)
    arrays = [rng.integers(0, 5, rows) for _ in range(cols)]
    combined = combine_codes([factorize(a) for a in arrays])
    tuples = list(zip(*(a.tolist() for a in arrays)))
    for i in range(rows):
        for j in range(rows):
            assert (combined[i] == combined[j]) == (
                tuples[i] == tuples[j]
            )


def test_factorize_empty_and_single_value():
    assert factorize(np.array([], dtype=np.int64)).tolist() == []
    assert factorize(np.array([], dtype=object)).tolist() == []
    codes = factorize(np.array(["only"] * 4, dtype=object))
    assert codes.tolist() == [0, 0, 0, 0]


def test_factorize_with_encoding_matches_legacy():
    from repro.storage.encoding import ColumnDictionary

    base = np.array([7, 3, 7, 1, 3, 3, 9], dtype=np.int64)
    d = ColumnDictionary(base)
    assert factorize(base, d).tolist() == factorize(base).tolist()
    subset = base[np.array([0, 2, 4, 5])]
    assert factorize(subset, d).tolist() == factorize(subset).tolist()
    empty = base[:0]
    assert factorize(empty, d).tolist() == []
    single = base[np.array([3])]
    assert factorize(single, d).tolist() == [0]


def test_join_codes_one_empty_side():
    from repro.storage.encoding import ColumnDictionary

    left = np.array([2, 4, 2], dtype=np.int64)
    right = np.array([], dtype=np.int64)
    lc, rc = join_codes([left], [right])
    assert len(rc) == 0 and len(set(lc.tolist())) == 2
    ld, rd = ColumnDictionary(left), ColumnDictionary(np.array([4]))
    lc2, rc2 = join_codes(
        [left], [right], left_encodings=[ld], right_encodings=[rd]
    )
    assert lc2.tolist() == lc.tolist() and len(rc2) == 0


def test_join_codes_sort_free_matches_legacy():
    from repro.storage.encoding import ColumnDictionary

    lbase = np.array(["x", "y", "z", "y"], dtype=object)
    rbase = np.array(["y", "w", "y", "q"], dtype=object)
    ld, rd = ColumnDictionary(lbase), ColumnDictionary(rbase)
    legacy = join_codes([lbase], [rbase])
    fast = join_codes(
        [lbase], [rbase], left_encodings=[ld], right_encodings=[rd]
    )
    assert fast[0].tolist() == legacy[0].tolist()
    assert fast[1].tolist() == legacy[1].tolist()
    # Shared dictionary (self-join): same contract.
    self_legacy = join_codes([lbase], [lbase[:2]])
    self_fast = join_codes(
        [lbase], [lbase[:2]], left_encodings=[ld], right_encodings=[ld]
    )
    assert self_fast[0].tolist() == self_legacy[0].tolist()
    assert self_fast[1].tolist() == self_legacy[1].tolist()


@settings(max_examples=50, deadline=None)
@given(
    left=st.lists(st.integers(0, 12), min_size=0, max_size=40),
    right=st.lists(st.integers(0, 12), min_size=0, max_size=40),
)
def test_property_sort_free_join_matches_legacy(left, right):
    from repro.storage.encoding import ColumnDictionary

    larr = np.array(left, dtype=np.int64)
    rarr = np.array(right, dtype=np.int64)
    if len(larr) == 0 or len(rarr) == 0:
        return
    legacy = join_codes([larr], [rarr])
    fast = join_codes(
        [larr], [rarr],
        left_encodings=[ColumnDictionary(larr)],
        right_encodings=[ColumnDictionary(rarr)],
    )
    assert fast[0].tolist() == legacy[0].tolist()
    assert fast[1].tolist() == legacy[1].tolist()


def test_combine_codes_single_array_and_empty_rows():
    only = factorize(np.array([5, 5, 2]))
    assert combine_codes([only]) is only
    empty = np.array([], dtype=np.int64)
    assert combine_codes([empty, empty]).tolist() == []


def test_combine_codes_overflow_regression():
    """Huge code magnitudes must re-densify instead of wrapping int64.

    Without the guard, ``combined * span`` silently wraps negative and
    rows with distinct key tuples can collide (or index presence arrays
    from the wrong end).
    """
    a = np.array([2**40, 0, 2**40, 7], dtype=np.int64)
    b = np.array([2**40 - 1, 1, 0, 2**40 - 1], dtype=np.int64)
    c = np.array([2**40 - 5, 2, 5, 2**40 - 5], dtype=np.int64)
    combined = combine_codes([a, b, c])
    assert combined.min() >= 0
    tuples = list(zip(a.tolist(), b.tolist(), c.tolist()))
    for i in range(len(tuples)):
        for j in range(len(tuples)):
            assert (combined[i] == combined[j]) == (tuples[i] == tuples[j])
    # Codes stay dense after combining.
    assert sorted(set(combined.tolist())) == list(
        range(len(set(tuples)))
    )


def test_batch_mask_take_preserve_encodings():
    from repro.storage.encoding import ColumnDictionary

    batch = make_batch(6)
    d = ColumnDictionary(batch.columns["t.b"])
    batch.encodings["t.b"] = d
    masked = batch.mask(np.array([True, False] * 3))
    taken = batch.take(np.array([0, 5]))
    assert masked.encodings["t.b"] is d
    assert taken.encodings["t.b"] is d
    # The propagated encoding still factorizes the subset correctly.
    assert factorize(
        masked.columns["t.b"], masked.encodings["t.b"]
    ).tolist() == factorize(masked.columns["t.b"]).tolist()


def test_weighted_count_through_hash_join(city_db_p):
    """A weighted batch joined against a plain one multiplies weights.

    Covers the view-rewrite count semantics at the operator level.
    """
    from repro.executor.engine import Executor
    from repro.optimizer.plans import HashJoin, PlanEstimate, SeqScan
    import repro.optimizer.plans as plans

    db = city_db_p
    users_scan = SeqScan(alias="u", table="users", columns=["uid", "city"])
    users_scan.est = PlanEstimate(1, 1, 1)
    orders_scan = SeqScan(alias="o", table="orders", columns=["uid"])
    orders_scan.est = PlanEstimate(1, 1, 1)
    join = HashJoin(orders_scan, users_scan, ["o.uid"], ["u.uid"])
    join.est = PlanEstimate(1, 1, 1)
    agg = plans.HashAggregate(join, ["u.city"], [])
    del agg

    executor = Executor(db.tables, db.system.hardware)
    result = executor.run(join)
    assert result.batch.weights is None

    # Now inject weights on the probe side and re-run manually.
    batch = result.batch
    assert batch.rows > 0
