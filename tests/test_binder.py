"""Binder tests over the small city catalog."""

import pytest

from repro.common.errors import BindError
from repro.sql.binder import Binder, BoundColumn
from repro.sql.parser import parse

from conftest import make_city_catalog


@pytest.fixture
def binder():
    return Binder(make_city_catalog())


def bind(binder, sql):
    return binder.bind(parse(sql))


def test_bind_join_and_filter(binder):
    bound = bind(
        binder,
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid AND u.age = 30 GROUP BY u.city",
    )
    assert bound.relations == {"u": "users", "o": "orders"}
    assert len(bound.join_preds) == 1
    assert bound.filters[0].target == BoundColumn("u", "age")
    assert bound.filters[0].value == 30
    assert bound.group_by == [BoundColumn("u", "city")]
    assert bound.aggregates[0].func == "count"


def test_unqualified_resolution(binder):
    bound = bind(binder, "SELECT age FROM users u")
    assert bound.output == [("col", BoundColumn("u", "age"))]


def test_ambiguous_column_rejected(binder):
    with pytest.raises(BindError, match="ambiguous"):
        bind(binder, "SELECT city FROM users u, orders o")


def test_unknown_names_rejected(binder):
    with pytest.raises(BindError):
        bind(binder, "SELECT a FROM missing")
    with pytest.raises(BindError):
        bind(binder, "SELECT nope FROM users")
    with pytest.raises(BindError):
        bind(binder, "SELECT x.uid FROM users u")


def test_duplicate_alias_rejected(binder):
    with pytest.raises(BindError, match="duplicate"):
        bind(binder, "SELECT u.uid FROM users u, orders u")


def test_selected_column_must_be_grouped(binder):
    with pytest.raises(BindError, match="not grouped"):
        bind(
            binder,
            "SELECT u.age, COUNT(*) FROM users u GROUP BY u.city",
        )


def test_semijoin_shape(binder):
    bound = bind(
        binder,
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid IN "
        "(SELECT uid FROM orders GROUP BY uid HAVING COUNT(*) < 4) "
        "GROUP BY o.city",
    )
    semi = bound.semijoins[0]
    assert semi.sub_table == "orders"
    assert semi.sub_column == "uid"
    assert semi.having_op == "<"
    assert semi.having_value == 4


def test_subquery_must_select_group_column(binder):
    with pytest.raises(BindError):
        bind(
            binder,
            "SELECT o.city FROM orders o WHERE o.uid IN "
            "(SELECT oid FROM orders GROUP BY uid "
            "HAVING COUNT(*) < 4)",
        )


def test_self_join_binds(binder):
    bound = bind(
        binder,
        "SELECT u1.city, COUNT(*) FROM users u1, users u2 "
        "WHERE u1.age = u2.age GROUP BY u1.city",
    )
    assert bound.relations == {"u1": "users", "u2": "users"}


def test_columns_of_collects_references(binder):
    bound = bind(
        binder,
        "SELECT u.city, COUNT(DISTINCT o.amount) FROM users u, orders o "
        "WHERE u.uid = o.uid AND o.city = 'tor' GROUP BY u.city",
    )
    assert bound.columns_of("u") == ["city", "uid"]
    assert bound.columns_of("o") == ["amount", "city", "uid"]
