"""B+-tree unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.btree import BPlusTree


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert tree.height == 1
    assert tree.search((1,)) == []
    assert list(tree.items()) == []


def test_bulk_load_roundtrip():
    entries = [((i,), i * 10) for i in range(1000)]
    tree = BPlusTree.bulk_load(entries, order=8)
    tree.check_invariants()
    assert len(tree) == 1000
    assert tree.height > 1
    assert [v for _, v in tree.items()] == [i * 10 for i in range(1000)]
    for i in (0, 1, 499, 999):
        assert tree.search((i,)) == [i * 10]
    assert tree.search((1000,)) == []


def test_bulk_load_rejects_unsorted():
    with pytest.raises(ValueError):
        BPlusTree.bulk_load([((2,), 0), ((1,), 1)])


def test_duplicates_are_preserved():
    entries = sorted([((5,), i) for i in range(20)] + [((3,), 99)])
    tree = BPlusTree.bulk_load(entries, order=4)
    assert sorted(tree.search((5,))) == list(range(20))
    assert tree.search((3,)) == [99]


def test_insert_grows_and_splits():
    tree = BPlusTree(order=4)
    for i in range(200):
        tree.insert((i % 37, i), i)
    tree.check_invariants()
    assert len(tree) == 200
    assert tree.height >= 3


def test_range_scan_bounds():
    tree = BPlusTree.bulk_load([((i,), i) for i in range(100)], order=8)
    got = [k[0] for k, _ in tree.range_scan(low=(10,), high=(20,))]
    assert got == list(range(10, 21))
    assert [k for k, _ in tree.range_scan(low=(95,))] == [
        (i,) for i in range(95, 100)
    ]
    assert [k for k, _ in tree.range_scan(high=(3,))] == [
        (i,) for i in range(4)
    ]


def test_composite_keys_order():
    entries = sorted(
        [((a, b), a * 10 + b) for a in range(5) for b in range(5)]
    )
    tree = BPlusTree.bulk_load(entries, order=4)
    tree.check_invariants()
    assert tree.search((2, 3)) == [23]
    got = [k for k, _ in tree.range_scan(low=(1, 3), high=(2, 1))]
    assert got == [(1, 3), (1, 4), (2, 0), (2, 1)]


@settings(max_examples=60, deadline=None)
@given(
    keys=st.lists(st.integers(-1000, 1000), min_size=0, max_size=300),
    order=st.integers(4, 32),
)
def test_property_insert_matches_sorted(keys, order):
    """Inserting any key sequence yields a sorted, invariant-clean tree."""
    tree = BPlusTree(order=order)
    for pos, key in enumerate(keys):
        tree.insert((key,), pos)
    tree.check_invariants()
    got = [k[0] for k, _ in tree.items()]
    assert got == sorted(keys)
    for key in set(keys):
        expected = sorted(pos for pos, k in enumerate(keys) if k == key)
        assert sorted(tree.search((key,))) == expected


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(0, 500),
    order=st.integers(4, 64),
)
def test_property_bulk_load_equals_insert(n, order):
    """Bulk loading and inserting the same entries agree item-for-item."""
    rng = np.random.default_rng(n)
    keys = rng.integers(0, max(1, n // 2) + 1, n)
    entries = sorted(((int(k),), i) for i, k in enumerate(keys))
    bulk = BPlusTree.bulk_load(entries, order=order)
    incremental = BPlusTree(order=order)
    for key, value in sorted(entries, key=lambda e: e[1]):
        incremental.insert(key, value)
    bulk.check_invariants()
    incremental.check_invariants()
    assert sorted(bulk.items()) == sorted(incremental.items())
