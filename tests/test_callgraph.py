"""The project call graph (repro.lint.callgraph): one test per edge
resolution tier — direct, import-alias, ``self.``/``cls.`` dispatch
(following bases), typed-receiver, unique-name fallback — plus the
executor-entry marking (``submit``/bound-method targets) and the
``EXTERNAL`` attribute-type guard that keeps foreign objects from
borrowing project methods."""

import ast

from repro.lint.callgraph import EXTERNAL, CallGraph
from repro.lint.core import FileUnit


def unit(rel, source):
    return FileUnit("/project/" + rel, rel, source, ast.parse(source))


def graph(*units_):
    return CallGraph(list(units_))


def edges(g, caller):
    """(callee qualname, kind) pairs out of one caller qualname."""
    info = g.functions[caller]
    return {(site.callee, site.kind) for site in info.calls
            if site.callee is not None}


# ----------------------------------------------------------------------
# Resolution tiers.


def test_direct_call_same_module():
    g = graph(unit("repro/a.py", (
        "def helper():\n"
        "    return 1\n"
        "\n"
        "def caller():\n"
        "    return helper()\n"
    )))
    assert ("repro.a::helper", "direct") in edges(g, "repro.a::caller")


def test_import_alias_call_crosses_modules():
    g = graph(
        unit("repro/a.py", (
            "from repro import b as helpers\n"
            "\n"
            "def caller():\n"
            "    return helpers.compute()\n"
        )),
        unit("repro/b.py", (
            "def compute():\n"
            "    return 2\n"
        )),
    )
    assert ("repro.b::compute", "import") in edges(g, "repro.a::caller")


def test_from_import_of_function_resolves_via_alias():
    g = graph(
        unit("repro/a.py", (
            "from repro.b import compute\n"
            "\n"
            "def caller():\n"
            "    return compute()\n"
        )),
        unit("repro/b.py", (
            "def compute():\n"
            "    return 2\n"
        )),
    )
    assert ("repro.b::compute", "import") in edges(g, "repro.a::caller")


def test_self_dispatch_follows_base_classes():
    g = graph(unit("repro/a.py", (
        "class Base:\n"
        "    def step(self):\n"
        "        return 0\n"
        "\n"
        "class Derived(Base):\n"
        "    def run(self):\n"
        "        return self.step()\n"
    )))
    assert ("repro.a::Base.step", "self") in edges(g, "repro.a::Derived.run")


def test_typed_receiver_from_local_construction():
    g = graph(unit("repro/a.py", (
        "class Worker:\n"
        "    def work(self):\n"
        "        return 1\n"
        "\n"
        "def caller():\n"
        "    w = Worker()\n"
        "    return w.work()\n"
    )))
    assert ("repro.a::Worker.work", "typed") in edges(g, "repro.a::caller")


def test_typed_receiver_from_constructed_attribute():
    g = graph(unit("repro/a.py", (
        "class Store:\n"
        "    def lookup(self):\n"
        "        return 1\n"
        "\n"
        "class Owner:\n"
        "    def __init__(self):\n"
        "        self.store = Store()\n"
        "\n"
        "    def fetch(self):\n"
        "        return self.store.lookup()\n"
    )))
    assert g.attribute_type("repro.a", "Owner", "store") == "Store"
    assert ("repro.a::Store.lookup", "typed") in edges(g, "repro.a::Owner.fetch")


def test_unique_method_name_fallback():
    g = graph(unit("repro/a.py", (
        "class Engine:\n"
        "    def frobnicate(self):\n"
        "        return 1\n"
        "\n"
        "def caller(engine):\n"
        "    return engine.frobnicate()\n"
    )))
    assert ("repro.a::Engine.frobnicate", "unique") in edges(g, "repro.a::caller")


def test_ambiguous_method_name_is_not_resolved():
    g = graph(unit("repro/a.py", (
        "class One:\n"
        "    def run(self):\n"
        "        return 1\n"
        "\n"
        "class Two:\n"
        "    def run(self):\n"
        "        return 2\n"
        "\n"
        "def caller(thing):\n"
        "    return thing.run()\n"
    )))
    assert edges(g, "repro.a::caller") == set()


def test_external_attribute_blocks_unique_fallback():
    # self._items is an OrderedDict (not a project class): its .get must
    # NOT resolve to Registry.get even though the name is unique.
    g = graph(unit("repro/a.py", (
        "from collections import OrderedDict\n"
        "\n"
        "class Registry:\n"
        "    def __init__(self):\n"
        "        self._items = OrderedDict()\n"
        "\n"
        "    def get(self, key):\n"
        "        return self._items.get(key)\n"
    )))
    assert g.attribute_type("repro.a", "Registry", "_items") == EXTERNAL
    assert edges(g, "repro.a::Registry.get") == set()


# ----------------------------------------------------------------------
# Executor entries and reachability.


def test_submit_of_bound_method_marks_entry():
    g = graph(unit("repro/a.py", (
        "class Job:\n"
        "    def run(self):\n"
        "        return self.finish()\n"
        "\n"
        "    def finish(self):\n"
        "        return 1\n"
        "\n"
        "def drive(pool):\n"
        "    job = Job()\n"
        "    pool.submit(job.run)\n"
    )))
    entries = {info.qualname for info in g.entries()}
    assert "repro.a::Job.run" in entries
    reachable = g.reachable_from_entries()
    assert "repro.a::Job.run" in reachable
    assert "repro.a::Job.finish" in reachable
    assert "repro.a::drive" not in reachable


def test_unsubmitted_methods_are_not_entries():
    g = graph(unit("repro/a.py", (
        "class Quiet:\n"
        "    def run(self):\n"
        "        return 1\n"
    )))
    assert {info.qualname for info in g.entries()} == set()
    assert g.reachable_from_entries() == set()


def test_callers_of_inverts_the_edge():
    g = graph(unit("repro/a.py", (
        "def helper():\n"
        "    return 1\n"
        "\n"
        "def one():\n"
        "    return helper()\n"
        "\n"
        "def two():\n"
        "    return helper()\n"
    )))
    callers = {site.caller.qualname for site in g.callers_of("repro.a::helper")}
    assert callers == {"repro.a::one", "repro.a::two"}


def test_submit_binding_maps_self_to_receiver():
    g = graph(unit("repro/a.py", (
        "class Job:\n"
        "    def run(self):\n"
        "        return 1\n"
        "\n"
        "def drive(pool):\n"
        "    job = Job()\n"
        "    pool.submit(job.run)\n"
    )))
    sites = [site for site in g.functions["repro.a::drive"].calls
             if site.kind == "submit"]
    assert len(sites) == 1
    assert sites[0].callee == "repro.a::Job.run"
    assert sites[0].bindings.get("self") == "job"
