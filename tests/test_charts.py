"""Text rendering of tables, histograms, and CFC curves."""

import numpy as np

from repro.analysis.binning import time_histogram
from repro.analysis.cfc import CumulativeFrequencyCurve, log_grid
from repro.analysis.charts import render_cfc, render_histogram, render_table
from repro.analysis.measurements import WorkloadMeasurement


def measurement(times, name="cfg"):
    times = np.asarray(times, dtype=np.float64)
    return WorkloadMeasurement(
        workload="W",
        configuration=name,
        elapsed=times,
        timed_out=np.zeros(len(times), dtype=bool),
    )


def test_render_table_alignment():
    text = render_table(
        ["name", "value"],
        [("alpha", 1), ("b", 22)],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1, "all rows padded to the same width"


def test_render_table_empty_rows():
    text = render_table(["a"], [])
    assert "a" in text


def test_render_histogram_contains_bins():
    hist = time_histogram(measurement([1, 5, 50, 500]))
    text = render_histogram(hist, title="H")
    assert text.startswith("H")
    assert "t_out" in text
    assert "#" in text
    assert "cum 100.0%" in text


def test_render_cfc_grid_and_names():
    curves = [
        CumulativeFrequencyCurve(measurement([1, 2, 3], "fast")),
        CumulativeFrequencyCurve(measurement([10, 20, 30], "slow")),
    ]
    grid = log_grid(1, 100, points_per_decade=1)
    text = render_cfc(curves, grid, title="curves")
    assert "fast" in text and "slow" in text
    assert "100.0%" in text
    assert text.startswith("curves")
