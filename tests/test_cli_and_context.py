"""The CLI and the shared bench context."""

import pathlib

import pytest

from repro.bench.cli import main
from repro.bench.context import (
    BenchContext,
    BenchSettings,
    FAMILY_DATASET,
    FAMILY_GENERATORS,
)


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment in ("fig3", "fig10", "tab1", "sec44"):
        assert experiment in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["run", "nope"])


def test_cli_runs_one_experiment(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main([
        "run", "tab2",
        "--scale", "0.04",
        "--workload-size", "6",
        "--results-dir", str(tmp_path / "out"),
    ])
    assert code == 0
    assert (tmp_path / "out" / "tab2.txt").exists()
    assert "Table 2" in capsys.readouterr().out


def test_settings_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    monkeypatch.setenv("REPRO_WORKLOAD_SIZE", "7")
    settings = BenchSettings.from_env()
    assert settings.scale == 0.5
    assert settings.workload_size == 7


def test_family_registries_consistent():
    assert set(FAMILY_GENERATORS) == set(FAMILY_DATASET)
    assert set(FAMILY_DATASET.values()) == {"nref", "skth", "unth"}


def test_context_caches_database_and_workload():
    ctx = BenchContext(BenchSettings(scale=0.03, workload_size=5))
    db1 = ctx.database("A", "nref")
    db2 = ctx.database("A", "nref")
    assert db1 is db2
    w1 = ctx.workload("A", "NREF2J")
    w2 = ctx.workload("A", "NREF2J")
    assert w1 is w2
    assert len(w1) == 5


def test_context_budget_positive():
    ctx = BenchContext(BenchSettings(scale=0.03, workload_size=5))
    db = ctx.database("A", "nref")
    assert ctx.space_budget(db) > 0


def test_context_measure_caches_and_reapplies():
    ctx = BenchContext(BenchSettings(scale=0.03, workload_size=5))
    m1 = ctx.measure("A", "NREF2J", "P")
    m2 = ctx.measure("A", "NREF2J", "P")
    assert m1 is m2
    m1c = ctx.measure("A", "NREF2J", "1C")
    assert m1c.configuration == "1C"
    assert len(m1c) == len(m1)


def test_results_dir_artifacts_exist_after_bench(tmp_path):
    # The bench fixture writes results/<id>.txt; emulate it here.
    from repro.bench.experiments import ExperimentResult

    result = ExperimentResult("x", "t", "body")
    path = tmp_path / f"{result.experiment}.txt"
    path.write_text(str(result))
    assert "body" in pathlib.Path(path).read_text()
