"""Units, RNG helpers, and the hardware model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hardware import (
    PAGE_SIZE,
    desktop_2004,
    pages_for_bytes,
)
from repro.common.rng import make_rng, spawn, zipf_choice, zipf_weights
from repro.common.units import GIB, format_bytes, format_seconds, minutes


def test_format_bytes():
    assert format_bytes(13.5 * GIB) == "13.5 GB"
    assert format_bytes(2.5 * 2**20) == "2.5 MB"
    assert format_bytes(3 * 1024) == "3.0 KB"
    assert format_bytes(17) == "17 B"


def test_format_seconds():
    assert format_seconds(5.0) == "5.0 s"
    assert format_seconds(600) == "10 min"
    assert format_seconds(2 * 3600 * 4) == "8.0 h"
    assert minutes(120) == 2.0


def test_pages_for_bytes():
    assert pages_for_bytes(0) == 1
    assert pages_for_bytes(1) == 1
    assert pages_for_bytes(PAGE_SIZE) == 1
    assert pages_for_bytes(PAGE_SIZE + 1) == 2


def test_hardware_scaling():
    base = desktop_2004()
    slower = base.scaled(2.0, "slow")
    assert slower.seq_page_read_s == 2 * base.seq_page_read_s
    assert slower.cpu_row_s == 2 * base.cpu_row_s
    assert slower.work_mem_bytes == base.work_mem_bytes
    assert slower.name == "slow"


def test_zipf_weights_uniform_degenerate():
    w = zipf_weights(10, 0.0)
    assert np.allclose(w, 0.1)
    with pytest.raises(ValueError):
        zipf_weights(0, 1.0)


def test_zipf_weights_skewed():
    w = zipf_weights(100, 1.0)
    assert w[0] > 10 * w[99]
    assert w.sum() == pytest.approx(1.0)


def test_zipf_choice_covers_values():
    rng = make_rng(0)
    values = np.arange(50)
    sample = zipf_choice(rng, values, 5000, 1.0)
    assert set(np.unique(sample)) <= set(values)
    counts = np.bincount(sample, minlength=50)
    assert counts.max() > 5 * max(1, counts[counts > 0].min())


def test_spawn_independent_streams():
    rng = make_rng(7)
    a = spawn(rng, "alpha")
    b = spawn(rng, "beta")
    assert a.integers(0, 10**9) != b.integers(0, 10**9) or True
    # Same seed + label sequence reproduces exactly.
    rng1, rng2 = make_rng(7), make_rng(7)
    s1 = spawn(rng1, "alpha").integers(0, 10**9, 5)
    s2 = spawn(rng2, "alpha").integers(0, 10**9, 5)
    assert (s1 == s2).all()


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 500), z=st.floats(0.0, 2.0))
def test_property_zipf_weights_sum_and_order(n, z):
    w = zipf_weights(n, z)
    assert w.sum() == pytest.approx(1.0)
    assert np.all(np.diff(w) <= 1e-15)


def test_system_profiles_distinct():
    from repro.engine.systems import by_name, system_a, system_b, system_c

    a, b, c = system_a(), system_b(), system_c()
    assert a.recommender.max_candidates is not None
    assert b.recommender.leading_strategy == "groupby-first"
    assert c.recommender.consider_views
    assert not a.recommender.consider_views
    assert by_name("a").name == "A"
    with pytest.raises(ValueError):
        by_name("Z")
