"""Configurations: P, 1C, composition, width histograms, sizes."""

import pytest

from repro.common.errors import ConfigurationError
from repro.engine.configuration import (
    Configuration,
    one_column_configuration,
    primary_configuration,
)
from repro.index.definition import IndexDefinition

from conftest import make_city_catalog


def test_primary_configuration_has_pk_indexes_only():
    config = primary_configuration(make_city_catalog())
    assert config.name == "P"
    assert {ix.table for ix in config.indexes} == {"users", "orders"}
    assert all(ix.is_primary for ix in config.indexes)
    assert config.secondary_indexes() == []


def test_one_column_covers_every_indexable_column():
    catalog = make_city_catalog()
    config = one_column_configuration(catalog)
    secondary = config.secondary_indexes()
    expected = sum(
        len(schema.indexable_columns()) for schema in catalog.tables()
    )
    assert len(secondary) == expected
    assert all(ix.width == 1 for ix in secondary)


def test_nref_one_column_skips_nonindexable(tiny_nref):
    config = one_column_configuration(tiny_nref.catalog)
    assert not any(
        ix.columns == ("sequence",) for ix in config.indexes
    ), "the sequence blob is not indexable"


def test_duplicate_indexes_rejected():
    ix = IndexDefinition(table="t", columns=("a",))
    with pytest.raises(ConfigurationError):
        Configuration(name="X", indexes=(ix, ix))


def test_with_indexes_deduplicates():
    ix = IndexDefinition(table="t", columns=("a",))
    config = Configuration(name="X", indexes=(ix,))
    extended = config.with_indexes([ix, IndexDefinition("t", ("b",))])
    assert len(extended.indexes) == 2


def test_width_histogram():
    config = Configuration(
        name="X",
        indexes=(
            IndexDefinition("t", ("a",)),
            IndexDefinition("t", ("a", "b")),
            IndexDefinition("t", ("a", "b", "c")),
            IndexDefinition("u", ("x",)),
            IndexDefinition("u", ("y",), is_primary=True),
        ),
    )
    histogram = config.index_width_histogram()
    assert histogram["t"] == [1, 1, 1, 0]
    assert histogram["u"] == [1, 0, 0, 0]


def test_build_report_sizes(city_db):
    catalog = city_db.catalog
    p_report = city_db.apply_configuration(primary_configuration(catalog))
    c_report = city_db.apply_configuration(
        one_column_configuration(catalog)
    )
    assert c_report.index_bytes > p_report.index_bytes
    assert c_report.build_seconds > p_report.build_seconds
    assert c_report.heap_bytes == p_report.heap_bytes
    assert c_report.total_bytes > p_report.total_bytes


def test_estimated_bytes_close_to_built(city_db):
    config = one_column_configuration(city_db.catalog)
    estimated = city_db.estimated_configuration_bytes(config)
    report = city_db.apply_configuration(config)
    assert estimated == pytest.approx(report.index_bytes, rel=0.35)


def test_system_overheads_change_sizes(tiny_nref):
    from repro.engine.systems import system_a, system_b
    from repro.engine.configuration import one_column_configuration
    from repro.datagen.nref import load_nref_database

    db_a = tiny_nref
    db_b = load_nref_database(system_b(), scale=0.05)
    config = one_column_configuration(db_a.catalog)
    bytes_a = db_a.estimated_configuration_bytes(config)
    bytes_b = db_b.estimated_configuration_bytes(config)
    assert bytes_a > bytes_b, (
        "System A's bulkier index format mirrors Table 1 "
        "(A NREF 1C = 35.7 GB vs B NREF 1C = 17.1 GB)"
    )
    assert system_a().index_overhead > system_b().index_overhead


def test_renamed_preserves_contents():
    config = one_column_configuration(make_city_catalog())
    renamed = config.renamed("other")
    assert renamed.name == "other"
    assert renamed.indexes == config.indexes
