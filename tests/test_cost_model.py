"""Cost model unit and property tests.

The cost model is shared between the estimator and the executor, so its
monotonicity and non-negativity properties are what make A/E comparisons
meaningful.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.hardware import desktop_2004
from repro.optimizer import cost_model as cm

HW = desktop_2004()


def test_seq_scan_scales_with_pages():
    assert cm.seq_scan(HW, 100, 1000) < cm.seq_scan(HW, 200, 1000)
    assert cm.seq_scan(HW, 100, 1000) < cm.seq_scan(HW, 100, 100_000)


def test_spill_kicks_in_above_work_mem():
    below = cm.spill(HW, HW.work_mem_bytes)
    above = cm.spill(HW, HW.work_mem_bytes * 4)
    assert below == 0.0
    assert above > 0.0


def test_hash_join_pieces_nonnegative():
    assert cm.hash_build(HW, 0, 100) == 0.0
    assert cm.hash_probe(HW, 0) == 0.0
    assert cm.join_output(HW, 0, 100) == 0.0


def test_heap_fetch_bitmap_bound():
    """Fetching many rows never costs more than a bitmap pass over the
    heap (plus CPU)."""
    pages, rows = 1000, 100_000
    fetched = 50_000
    cost = cm.heap_fetch(HW, fetched, 1.0, pages, rows)
    bitmap_ceiling = pages * HW.seq_page_read_s * 1.5 \
        + fetched * HW.cpu_row_s
    assert cost <= bitmap_ceiling + 1e-9


def test_heap_fetch_cluster_factor_discount():
    clustered = cm.heap_fetch(HW, 100, 0.05, 1000, 100_000)
    scattered = cm.heap_fetch(HW, 100, 1.0, 1000, 100_000)
    assert clustered < scattered


def test_index_probes_sublinear():
    """Probe batches share leaves: 10x probes < 10x cost."""
    one = cm.index_probes(HW, 100, 1_000_000, 5_000)
    ten = cm.index_probes(HW, 1_000, 1_000_000, 5_000)
    assert ten < 10 * one


def test_sort_loglinear():
    small = cm.sort(HW, 1_000, 16)
    large = cm.sort(HW, 100_000, 16)
    assert small < large
    assert cm.sort(HW, 1, 16) == 0.0


def test_build_index_components():
    cost = cm.build_index(HW, 1000, 100_000, 16, 400)
    assert cost > cm.seq_scan(HW, 1000, 100_000)


def test_insert_linear_and_index_surcharge():
    no_ix = cm.insert_rows(HW, 1000, 100, [])
    three_ix = cm.insert_rows(HW, 1000, 100, [2, 3, 3])
    assert three_ix > no_ix
    assert cm.insert_rows(HW, 2000, 100, [2]) == pytest.approx(
        2 * cm.insert_rows(HW, 1000, 100, [2]), rel=0.01
    )


@settings(max_examples=80, deadline=None)
@given(
    rows=st.integers(0, 10**7),
    pages=st.integers(1, 10**5),
    cf=st.floats(0.001, 1.0),
)
def test_property_heap_fetch_nonnegative_monotone(rows, pages, cf):
    table_rows = max(rows, 1)
    a = cm.heap_fetch(HW, rows, cf, pages, table_rows * 2)
    b = cm.heap_fetch(HW, rows * 2, cf, pages, table_rows * 2)
    assert a >= 0.0
    assert b >= a - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    in_rows=st.integers(0, 10**6),
    groups=st.integers(1, 10**6),
    width=st.integers(8, 256),
)
def test_property_aggregate_monotone_in_input(in_rows, groups, width):
    groups = min(groups, max(in_rows, 1))
    a = cm.hash_aggregate(HW, in_rows, groups, width)
    b = cm.hash_aggregate(HW, in_rows * 2, groups, width)
    assert 0.0 <= a <= b + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    probes=st.integers(1, 10**6),
    entries=st.integers(1, 10**7),
    leaves=st.integers(1, 10**5),
)
def test_property_index_probes_bounded_by_leaves(probes, entries, leaves):
    cost = cm.index_probes(HW, probes, entries, leaves)
    ceiling = (
        HW.random_page_read_s
        + leaves * HW.random_page_read_s
        + probes * HW.cpu_row_s
    )
    assert 0.0 < cost <= ceiling + 1e-9
