"""The dataflow framework (repro.lint.dataflow): CFG approximation
shapes (branch/loop/with/try), the must-lockset lattice — intersection
join, TOP for unreached code, acquire/release transfer — and the
fixpoint driver they plug into."""

import ast

from repro.lint.dataflow import (
    TOP,
    LocksetAnalysis,
    build_cfg,
    statement_operations,
)


def fn(source):
    tree = ast.parse(source)
    node = tree.body[0]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return node


def lock_token(expr):
    """Token scheme for tests: ``self.X`` -> ``X``, bare name -> name."""
    if isinstance(expr, ast.Attribute) and \
            isinstance(expr.value, ast.Name) and expr.value.id == "self":
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def locks_by_line(source, entry_locks=frozenset()):
    """{line: entry lockset} for every stmt/test operation."""
    node = fn(source)
    cfg = build_cfg(node, lock_token=lock_token)
    analysis = LocksetAnalysis(entry_locks=entry_locks)
    analysis.run(cfg)
    held = {}
    for op, state in analysis.before.items():
        if op.kind in ("stmt", "test"):
            held[op.node.lineno] = state
    return held


# ----------------------------------------------------------------------
# CFG shapes.


def test_straight_line_is_one_block():
    cfg = build_cfg(fn("def f(self):\n    a = 1\n    b = 2\n"))
    stmt_ops = [op for block in cfg.blocks for op in block.ops
                if op.kind == "stmt"]
    assert len(stmt_ops) == 2


def test_with_produces_paired_acquire_release():
    cfg = build_cfg(fn(
        "def f(self):\n"
        "    with self.lock:\n"
        "        a = 1\n"
    ), lock_token=lock_token)
    kinds = [op.kind for block in cfg.blocks for op in block.ops]
    assert kinds.count("acquire") == 1
    assert kinds.count("release") == 1
    acquires = [op for block in cfg.blocks for op in block.ops
                if op.kind == "acquire"]
    assert acquires[0].payload == ("lock",)


def test_branch_joins_at_the_merge_point():
    cfg = build_cfg(fn(
        "def f(self, flag):\n"
        "    if flag:\n"
        "        a = 1\n"
        "    else:\n"
        "        b = 2\n"
        "    c = 3\n"
    ))
    # The join block (holding ``c = 3``) has two predecessors.
    joins = [block for block in cfg.blocks
             if any(op.kind == "stmt" and
                    isinstance(op.node, ast.Assign) and
                    op.node.targets[0].id == "c"
                    for op in block.ops)]
    assert len(joins) == 1
    assert len(cfg.predecessors()[joins[0]]) == 2


def test_loop_has_a_back_edge():
    cfg = build_cfg(fn(
        "def f(self, items):\n"
        "    for item in items:\n"
        "        a = item\n"
        "    b = 1\n"
    ))
    headers = [block for block in cfg.blocks
               if any(op.kind == "test" for op in block.ops)]
    assert len(headers) == 1
    # Entry edge plus the back edge from the loop body.
    assert len(cfg.predecessors()[headers[0]]) == 2


# ----------------------------------------------------------------------
# Lockset lattice: transfer and join.


def test_lock_held_inside_with_released_after():
    held = locks_by_line(
        "def f(self):\n"
        "    before = 1\n"
        "    with self.lock:\n"
        "        inside = 2\n"
        "    after = 3\n"
    )
    assert held[2] == frozenset()
    assert held[4] == frozenset({"lock"})
    assert held[5] == frozenset()


def test_nested_locks_accumulate():
    held = locks_by_line(
        "def f(self):\n"
        "    with self.outer:\n"
        "        with self.inner:\n"
        "            x = 1\n"
        "        y = 2\n"
    )
    assert held[4] == frozenset({"outer", "inner"})
    assert held[5] == frozenset({"outer"})


def test_join_is_intersection_over_paths():
    # The lock is held on only one of the two paths into the final
    # statement, so the must-lockset there is empty.
    held = locks_by_line(
        "def f(self, flag):\n"
        "    if flag:\n"
        "        with self.lock:\n"
        "            self.count = 1\n"
        "    x = 2\n"
    )
    assert held[4] == frozenset({"lock"})
    assert held[5] == frozenset()


def test_both_branches_locked_keeps_the_lock():
    held = locks_by_line(
        "def f(self, flag):\n"
        "    with self.lock:\n"
        "        if flag:\n"
        "            a = 1\n"
        "        else:\n"
        "            b = 2\n"
        "        c = 3\n"
    )
    assert held[4] == frozenset({"lock"})
    assert held[6] == frozenset({"lock"})
    assert held[7] == frozenset({"lock"})


def test_entry_locks_seed_the_analysis():
    held = locks_by_line(
        "def f(self):\n"
        "    x = 1\n",
        entry_locks=frozenset({"caller_lock"}),
    )
    assert held[2] == frozenset({"caller_lock"})


def test_loop_body_reruns_do_not_widen():
    # A lock acquired inside the loop body must not leak into the
    # header's fixpoint: re-entering the header joins the unlocked
    # entry path with the released loop exit.
    held = locks_by_line(
        "def f(self, items):\n"
        "    for item in items:\n"
        "        with self.lock:\n"
        "            self.total = item\n"
        "    tail = 1\n"
    )
    assert held[4] == frozenset({"lock"})
    assert held[5] == frozenset()


def test_try_handler_joins_with_try_entry():
    # The handler is reachable from the start of the try body, before
    # the acquire, so it must not claim the lock.
    held = locks_by_line(
        "def f(self):\n"
        "    try:\n"
        "        with self.lock:\n"
        "            a = 1\n"
        "    except ValueError:\n"
        "        b = 2\n"
    )
    assert held[4] == frozenset({"lock"})
    assert held[6] == frozenset()


def test_unreached_code_stays_at_top():
    node = fn(
        "def f(self):\n"
        "    return 1\n"
        "    x = 2\n"
    )
    cfg = build_cfg(node, lock_token=lock_token)
    analysis = LocksetAnalysis(entry_locks=frozenset({"lock"}))
    analysis.run(cfg)
    dead_ops = [op for block in cfg.blocks for op in block.ops
                if op.kind == "stmt" and op.node.lineno == 3]
    assert len(dead_ops) == 1
    # Never analyzed: the entry state stays TOP, and locks_at reports
    # the empty set rather than inventing held locks for dead code.
    assert analysis.before.get(dead_ops[0], TOP) is TOP
    assert analysis.locks_at(dead_ops[0]) == frozenset()


def test_statement_operations_maps_back_to_statements():
    node = fn(
        "def f(self):\n"
        "    a = 1\n"
        "    b = 2\n"
    )
    cfg = build_cfg(node, lock_token=lock_token)
    analysis = LocksetAnalysis(entry_locks=frozenset())
    analysis.run(cfg)
    lines = sorted(node.lineno
                   for node, _ in statement_operations(analysis.before))
    assert lines == [2, 3]
