"""Data generators: schemas, integrity, skew, determinism."""

import numpy as np
import pytest

from repro.datagen.nref import (
    NrefScale,
    generate_nref,
    nref_catalog,
)
from repro.datagen.tpch import generate_tpch, tpch_catalog


def test_nref_catalog_matches_paper_schema():
    catalog = nref_catalog()
    assert set(catalog.table_names) == {
        "protein", "source", "taxonomy", "organism",
        "neighboring_seq", "identical_seq",
    }
    assert catalog.table("protein").primary_key == ("nref_id",)
    assert catalog.table("source").primary_key == ("nref_id", "p_id")
    assert catalog.table("taxonomy").primary_key == ("nref_id", "taxon_id")
    assert catalog.table("neighboring_seq").primary_key == (
        "nref_id_1", "ordinal",
    )
    assert not catalog.table("protein").column("sequence").indexable


def test_nref_scale_preserves_paper_ratios():
    sizes = NrefScale.of(1.0)
    # Neighboring_seq : Protein ≈ 78.7 : 1.1 in the paper.
    assert sizes.neighboring_seq / sizes.protein == pytest.approx(
        78.7 / 1.1, rel=0.02
    )
    assert sizes.taxonomy / sizes.source == pytest.approx(
        15.1 / 3.0, rel=0.02
    )
    half = NrefScale.of(0.5)
    assert half.protein == pytest.approx(sizes.protein / 2, rel=0.05)


def test_nref_foreign_keys_hold():
    data = generate_nref(scale=0.05)
    proteins = set(data["protein"]["nref_id"].tolist())
    for child in ("source", "taxonomy", "organism"):
        assert set(data[child]["nref_id"].tolist()) <= proteins
    assert set(data["neighboring_seq"]["nref_id_1"].tolist()) <= proteins
    assert set(data["identical_seq"]["nref_id_1"].tolist()) <= proteins


def test_nref_composite_pk_unique():
    data = generate_nref(scale=0.05)
    pairs = list(
        zip(
            data["neighboring_seq"]["nref_id_1"].tolist(),
            data["neighboring_seq"]["ordinal"].tolist(),
        )
    )
    assert len(set(pairs)) == len(pairs)


def test_nref_skewed_frequencies_support_constant_ladders():
    data = generate_nref(scale=0.1)
    lineage = data["taxonomy"]["lineage"]
    _, counts = np.unique(lineage, return_counts=True)
    assert counts.max() >= 50 * counts.min(), (
        "lineage frequencies must span orders of magnitude for the "
        "k1/k2/k3 rule"
    )


def test_nref_deterministic():
    a = generate_nref(scale=0.02, seed=99)
    b = generate_nref(scale=0.02, seed=99)
    assert (a["taxonomy"]["taxon_id"] == b["taxonomy"]["taxon_id"]).all()
    c = generate_nref(scale=0.02, seed=100)
    assert not (
        a["taxonomy"]["taxon_id"] == c["taxonomy"]["taxon_id"]
    ).all()


def test_tpch_catalog_tables_and_fks():
    catalog = tpch_catalog()
    assert len(catalog.table_names) == 8
    lineitem = catalog.table("lineitem")
    fk_targets = {fk.ref_table for fk in lineitem.foreign_keys}
    assert fk_targets == {"orders", "part", "supplier", "partsupp"}


def test_tpch_fk_integrity():
    data = generate_tpch(scale=0.1, zipf=1.0)
    orders = set(data["orders"]["o_orderkey"].tolist())
    assert set(data["lineitem"]["l_orderkey"].tolist()) <= orders
    ps_pairs = set(
        zip(
            data["partsupp"]["ps_partkey"].tolist(),
            data["partsupp"]["ps_suppkey"].tolist(),
        )
    )
    li_pairs = set(
        zip(
            data["lineitem"]["l_partkey"].tolist(),
            data["lineitem"]["l_suppkey"].tolist(),
        )
    )
    assert li_pairs <= ps_pairs, "lineitem -> partsupp composite FK"


def test_tpch_uniform_vs_skewed():
    uniform = generate_tpch(scale=0.2, zipf=0.0, seed=5)
    skewed = generate_tpch(scale=0.2, zipf=1.0, seed=5)

    def top_fraction(column):
        _, counts = np.unique(column, return_counts=True)
        return counts.max() / counts.sum()

    assert top_fraction(skewed["lineitem"]["l_partkey"]) > \
        5 * top_fraction(uniform["lineitem"]["l_partkey"])


def test_tpch_dates_consistent():
    data = generate_tpch(scale=0.05)
    ship = data["lineitem"]["l_shipdate"]
    receipt = data["lineitem"]["l_receiptdate"]
    okey = data["lineitem"]["l_orderkey"]
    odate = data["orders"]["o_orderdate"][okey - 1]
    assert (receipt > ship).all()
    assert (ship > odate).all()


def test_tpch_linenumbers_start_at_one():
    data = generate_tpch(scale=0.05)
    ln = data["lineitem"]["l_linenumber"]
    ok = data["lineitem"]["l_orderkey"]
    assert ln.min() == 1
    first_rows = np.flatnonzero(np.r_[True, ok[1:] != ok[:-1]])
    assert (ln[first_rows] == 1).all()
