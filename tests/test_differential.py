"""Differential testing: random queries vs a naive reference evaluator.

Hypothesis generates queries from the benchmark SQL subset over the small
city schema; each is evaluated by a dictionary-based reference
implementation and by the engine under both the P and 1C configurations.
All three answers must agree exactly.
"""

import collections
import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)

from conftest import load_city_database

DB = load_city_database(n_users=120, n_orders=700, seed=21)
P_CONFIG = primary_configuration(DB.catalog)
ONE_C = one_column_configuration(DB.catalog)

TABLES = {
    "users": ["uid", "city", "age"],
    "orders": ["oid", "uid", "city", "amount"],
}
JOINABLE = {
    ("users", "uid"): [("orders", "uid")],
    ("users", "city"): [("orders", "city")],
}


def _rows(table):
    data = DB.table(table)
    names = data.column_names()
    return [
        dict(zip(names, values))
        for values in zip(*(data.column(n).tolist() for n in names))
    ]


REFERENCE_ROWS = {name: _rows(name) for name in TABLES}


def reference_eval(spec):
    """Naive nested-loop evaluation of a generated query spec."""
    tables = spec["tables"]              # [(alias, table)]
    row_sets = [REFERENCE_ROWS[t] for _, t in tables]
    aliases = [a for a, _ in tables]

    allowed = {}
    for alias, column, op, threshold in spec["semis"]:
        table = dict(tables)[alias]
        freq = collections.Counter(
            row[column] for row in REFERENCE_ROWS[table]
        )
        allowed[(alias, column)] = {
            v for v, f in freq.items() if _cmp(f, op, threshold)
        }

    groups = collections.Counter()
    for combo in itertools.product(*row_sets):
        env = dict(zip(aliases, combo))
        ok = True
        for (a1, c1), (a2, c2) in spec["joins"]:
            if env[a1][c1] != env[a2][c2]:
                ok = False
                break
        if ok:
            for alias, column, op, value in spec["filters"]:
                if not _cmp(env[alias][column], op, value):
                    ok = False
                    break
        if ok:
            for alias, column, __, ___ in spec["semis"]:
                if env[alias][column] not in allowed[(alias, column)]:
                    ok = False
                    break
        if ok:
            key = tuple(
                env[alias][column] for alias, column in spec["group_by"]
            )
            groups[key] += 1
    return sorted((*k, v) for k, v in groups.items())


def _cmp(lhs, op, rhs):
    return {
        "=": lhs == rhs,
        "<>": lhs != rhs,
        "<": lhs < rhs,
        "<=": lhs <= rhs,
        ">": lhs > rhs,
        ">=": lhs >= rhs,
    }[op]


def to_sql(spec):
    froms = ", ".join(f"{t} {a}" for a, t in spec["tables"])
    preds = [
        f"{a1}.{c1} = {a2}.{c2}" for (a1, c1), (a2, c2) in spec["joins"]
    ]
    for alias, column, op, value in spec["filters"]:
        rendered = f"'{value}'" if isinstance(value, str) else str(value)
        preds.append(f"{alias}.{column} {op} {rendered}")
    for alias, column, op, threshold in spec["semis"]:
        table = dict(spec["tables"])[alias]
        preds.append(
            f"{alias}.{column} IN (SELECT {column} FROM {table} "
            f"GROUP BY {column} HAVING COUNT(*) {op} {threshold})"
        )
    where = f" WHERE {' AND '.join(preds)}" if preds else ""
    group_cols = ", ".join(f"{a}.{c}" for a, c in spec["group_by"])
    return (
        f"SELECT {group_cols}, COUNT(*) FROM {froms}{where} "
        f"GROUP BY {group_cols}"
    )


@st.composite
def query_specs(draw):
    n_tables = draw(st.integers(1, 2))
    if n_tables == 1:
        table = draw(st.sampled_from(sorted(TABLES)))
        tables = [("t0", table)]
        joins = []
    else:
        (t1, c1) = draw(st.sampled_from(sorted(JOINABLE)))
        (t2, c2) = draw(st.sampled_from(JOINABLE[(t1, c1)]))
        tables = [("t0", t1), ("t1", t2)]
        joins = [(("t0", c1), ("t1", c2))]

    alias_tables = dict(tables)
    filters = []
    for __ in range(draw(st.integers(0, 2))):
        alias = draw(st.sampled_from([a for a, _ in tables]))
        column = draw(st.sampled_from(TABLES[alias_tables[alias]]))
        op = draw(st.sampled_from(["=", "<", ">", "<>", "<=", ">="]))
        if column == "city":
            value = draw(
                st.sampled_from(["tor", "mtl", "van", "cal", "ott", "zzz"])
            )
            if op not in ("=", "<>"):
                op = "="
        else:
            value = draw(st.integers(0, 150))
        filters.append((alias, column, op, value))

    semis = []
    if draw(st.booleans()):
        alias = draw(st.sampled_from([a for a, _ in tables]))
        column = draw(st.sampled_from(TABLES[alias_tables[alias]]))
        op = draw(st.sampled_from(["<", "<=", "=", ">"]))
        threshold = draw(st.integers(1, 12))
        semis.append((alias, column, op, threshold))

    group_alias = draw(st.sampled_from([a for a, _ in tables]))
    group_col = draw(st.sampled_from(TABLES[alias_tables[group_alias]]))
    group_by = [(group_alias, group_col)]

    return {
        "tables": tables,
        "joins": joins,
        "filters": filters,
        "semis": semis,
        "group_by": group_by,
    }


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=query_specs())
def test_property_engine_matches_reference(spec):
    sql = to_sql(spec)
    expected = reference_eval(spec)

    DB.apply_configuration(P_CONFIG)
    p_result = DB.execute(sql)
    assert sorted(p_result.rows()) == expected, sql

    DB.apply_configuration(ONE_C)
    c_result = DB.execute(sql)
    assert sorted(c_result.rows()) == expected, sql


def test_reference_sanity():
    spec = {
        "tables": [("t0", "users")],
        "joins": [],
        "filters": [("t0", "age", ">", 40)],
        "semis": [],
        "group_by": [("t0", "city")],
    }
    expected = reference_eval(spec)
    assert expected
    assert sum(r[-1] for r in expected) == sum(
        1 for row in REFERENCE_ROWS["users"] if row["age"] > 40
    )
