"""Tests for scripts/check_docs_links.py (anchors + orphan detection)."""

import importlib.util
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).parents[1]
SCRIPT = REPO_ROOT / "scripts" / "check_docs_links.py"

spec = importlib.util.spec_from_file_location("check_docs_links", SCRIPT)
check_docs_links = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_docs_links", check_docs_links)
spec.loader.exec_module(check_docs_links)


# ----------------------------------------------------------------------
# Anchor slugs

def test_heading_anchors_basic():
    anchors = check_docs_links.heading_anchors(
        "# Hello World\n## The `API` Reference!\n"
    )
    assert "hello-world" in anchors
    assert "the-api-reference" in anchors


def test_heading_anchors_duplicates_get_numeric_suffixes():
    anchors = check_docs_links.heading_anchors(
        "## Setup\ntext\n## Setup\nmore\n## Setup\n"
    )
    assert {"setup", "setup-1", "setup-2"} <= anchors


def test_html_anchors_are_honored():
    anchors = check_docs_links.heading_anchors(
        'intro <a id="pinned"></a> and <a name="named"></a>\n'
    )
    assert "pinned" in anchors
    assert "named" in anchors


# ----------------------------------------------------------------------
# File checks against a synthetic docs tree

@pytest.fixture()
def docs_tree(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "# Repo\n\nSee [guide](docs/guide.md) and "
        "[section](docs/guide.md#usage).\n"
    )
    (tmp_path / "docs" / "guide.md").write_text(
        "# Guide\n\n## Usage\n\nBack to [README](../README.md).\n"
    )
    return tmp_path


def test_clean_tree_passes(docs_tree, capsys):
    assert check_docs_links.main([str(docs_tree)]) == 0
    assert "docs links OK" in capsys.readouterr().out


def test_broken_link_fails(docs_tree, capsys):
    (docs_tree / "docs" / "guide.md").write_text(
        "# Guide\n\n## Usage\n\n[gone](missing.md)\n"
    )
    assert check_docs_links.main([str(docs_tree)]) == 1
    assert "broken link: missing.md" in capsys.readouterr().err


def test_missing_anchor_fails(docs_tree, capsys):
    (docs_tree / "README.md").write_text(
        "# Repo\n\n[bad](docs/guide.md#nope)\n"
    )
    assert check_docs_links.main([str(docs_tree)]) == 1
    assert "missing anchor #nope" in capsys.readouterr().err


def test_duplicate_heading_suffix_anchor_resolves(docs_tree):
    (docs_tree / "docs" / "guide.md").write_text(
        "# Guide\n\n## Flags\na\n## Flags\nb\n"
    )
    (docs_tree / "README.md").write_text(
        "# Repo\n\n[guide](docs/guide.md) "
        "[second flags](docs/guide.md#flags-1)\n"
    )
    assert check_docs_links.main([str(docs_tree)]) == 0


def test_orphan_docs_page_fails(docs_tree, capsys):
    (docs_tree / "docs" / "lost.md").write_text("# Lost\n")
    assert check_docs_links.main([str(docs_tree)]) == 1
    assert "orphan page" in capsys.readouterr().err


def test_transitively_linked_page_is_not_orphan(docs_tree):
    (docs_tree / "docs" / "guide.md").write_text(
        "# Guide\n\n## Usage\n\nDetails in [deep](deep.md).\n"
    )
    (docs_tree / "docs" / "deep.md").write_text("# Deep\n")
    assert check_docs_links.main([str(docs_tree)]) == 0


# ----------------------------------------------------------------------
# The real repository's docs must be clean

def test_repository_docs_are_clean(capsys):
    assert check_docs_links.main([str(REPO_ROOT)]) == 0
