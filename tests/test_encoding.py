"""Dictionary-encoded columns: identity caching, equivalence, invalidation."""

import numpy as np
import pytest
from conftest import load_city_database
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.data import IndexData
from repro.index.definition import IndexDefinition
from repro.storage.encoding import (
    CACHE_ENV,
    ColumnDictionary,
    DictionaryCache,
    dict_cache_enabled,
)
from repro.workload.constants import (
    frequency_ladder,
    selectivity_ladder,
    value_frequencies,
)


# ----------------------------------------------------------------------
# ColumnDictionary: byte-equivalence with the np.unique derivations

def test_dictionary_matches_np_unique():
    base = np.array([3, 1, 3, 2, 1, 3, 7], dtype=np.int64)
    d = ColumnDictionary(base)
    values, counts = np.unique(base, return_counts=True)
    assert d.values.tolist() == values.tolist()
    assert d.counts.tolist() == counts.tolist()
    assert d.n_distinct == len(values)
    assert d.row_count == len(base)
    _, inverse = np.unique(base, return_inverse=True)
    assert d.codes.tolist() == inverse.tolist()
    assert d.codes.dtype == np.int64
    assert d.argsort().tolist() == np.lexsort((base,)).tolist()


def test_dictionary_encode_base_and_subset():
    base = np.array(["b", "a", "c", "a", "b"], dtype=object)
    d = ColumnDictionary(base)
    assert d.encode(base) is d.codes  # the cached array, not a copy
    subset = base[np.array([0, 3])]
    assert d.values[d.encode(subset)].tolist() == ["b", "a"]


def test_dictionary_frequency_views():
    base = np.array([5, 5, 5, 2, 2, 9], dtype=np.int64)
    d = ColumnDictionary(base)
    values, counts = value_frequencies(base)
    dv, dc = d.by_frequency()
    assert dv.tolist() == values.tolist()
    assert dc.tolist() == counts.tolist()
    # The hoisted float64 cast is computed once and reused.
    f64 = d.by_frequency_counts_f64()
    assert f64 is d.by_frequency_counts_f64()
    assert f64.tolist() == counts.astype(np.float64).tolist()
    fv, ff = d.frequency_histogram()
    ev, ef = np.unique(counts, return_counts=True)
    assert fv.tolist() == ev.tolist() and ff.tolist() == ef.tolist()


# ----------------------------------------------------------------------
# Ladders served from a dictionary are identical to the raw-array path

def test_ladders_from_dictionary_identical(city_db):
    column = city_db.table("orders").column("uid")
    d = ColumnDictionary(column)
    assert selectivity_ladder(d) == selectivity_ladder(column)
    assert frequency_ladder(d) == frequency_ladder(column)
    dv, dc = value_frequencies(d)
    rv, rc = value_frequencies(column)
    assert dv.tolist() == rv.tolist() and dc.tolist() == rc.tolist()


def test_repeated_ladder_calls_hit_the_cache(city_db):
    cache = city_db._dict_cache
    before = cache.stats.hits
    first = selectivity_ladder(city_db.column_dictionary("orders", "uid"))
    second = selectivity_ladder(city_db.column_dictionary("orders", "uid"))
    assert first == second
    # The second call is a pure cache read: one more hit, no rebuild.
    assert cache.stats.hits > before
    d1 = city_db.column_dictionary("orders", "uid")
    assert city_db.column_dictionary("orders", "uid") is d1


# ----------------------------------------------------------------------
# DictionaryCache: identity validation and invalidation sweep

def test_cache_serves_same_dictionary_until_data_changes(city_db):
    cache = DictionaryCache()
    users = city_db.table("users")
    d1 = cache.dictionary(users, "city")
    d2 = cache.dictionary(users, "city")
    assert d1 is d2
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    users.append_rows(
        {"uid": [10_000], "city": ["yyz"], "age": [40]}
    )
    d3 = cache.dictionary(users, "city")
    assert d3 is not d1  # append replaced the storage array
    assert "yyz" in d3.values.tolist()


def test_invalidate_sweeps_stale_entries_keeps_fresh(city_db):
    cache = DictionaryCache()
    users = city_db.table("users")
    orders = city_db.table("orders")
    cache.dictionary(users, "city")
    kept = cache.dictionary(orders, "city")
    users.append_rows(
        {"uid": [10_001], "city": ["yul"], "age": [41]}
    )
    cache.invalidate()
    assert ("users", "city") not in cache._entries
    assert cache.dictionary(orders, "city") is kept


def test_lexsort_matches_np_lexsort(city_db):
    cache = DictionaryCache()
    users = city_db.table("users")
    arrays = [users.column("city"), users.column("age")]
    expected = np.lexsort(tuple(reversed(arrays)))
    order = cache.lexsort(users, ("city", "age"))
    assert order.tolist() == expected.tolist()
    # Memoized: the identical permutation object on a repeat call.
    assert cache.lexsort(users, ("city", "age")) is order
    # A shared suffix reuses the cached inner sort.
    suffix = cache.lexsort(users, ("age",))
    assert suffix.tolist() == np.lexsort(
        (users.column("age"),)
    ).tolist()


def test_lexsort_recomputes_after_append_rows(city_db):
    cache = DictionaryCache()
    users = city_db.table("users")
    stale = cache.lexsort(users, ("city", "age"))
    users.append_rows(
        {"uid": [10_002], "city": ["aaa"], "age": [1]}
    )
    fresh = cache.lexsort(users, ("city", "age"))
    assert fresh is not stale
    arrays = [users.column("city"), users.column("age")]
    assert fresh.tolist() == np.lexsort(
        tuple(reversed(arrays))
    ).tolist()


def test_index_build_with_cache_is_identical(city_db):
    cache = DictionaryCache()
    users = city_db.table("users")
    definition = IndexDefinition(table="users", columns=("city", "age"))
    legacy = IndexData(definition, users)
    cached = IndexData(definition, users, encodings=cache)
    assert cached.row_ids.tolist() == legacy.row_ids.tolist()
    for got, want in zip(cached.key_columns, legacy.key_columns):
        assert got.tolist() == want.tolist()
    assert cached.cluster_factor == legacy.cluster_factor
    # The memoized permutation is not aliased into the index.
    assert cached.row_ids is not cache.lexsort(users, ("city", "age"))


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 60),
    domain=st.integers(1, 8),
    seed=st.integers(0, 500),
)
def test_property_lexsort_equals_np_lexsort(rows, domain, seed):
    from conftest import make_city_catalog
    from repro.storage.table import Table

    rng = np.random.default_rng(seed)
    catalog = make_city_catalog()
    table = Table(
        catalog.table("orders"),
        {
            "oid": np.arange(rows),
            "uid": rng.integers(0, domain, rows),
            "city": rng.choice(
                np.array(["a", "b", "c"], dtype=object), rows
            ),
            "amount": rng.integers(0, domain, rows),
        },
    )
    cache = DictionaryCache()
    for columns in (("uid",), ("city", "uid"), ("uid", "city", "amount")):
        arrays = [table.column(c) for c in columns]
        expected = np.lexsort(tuple(reversed(arrays)))
        assert cache.lexsort(table, columns).tolist() == expected.tolist()


# ----------------------------------------------------------------------
# The REPRO_DICT_CACHE kill switch

def test_dict_cache_enabled_env(monkeypatch):
    monkeypatch.delenv(CACHE_ENV, raising=False)
    assert dict_cache_enabled()
    for off in ("0", "false", "NO", " Off "):
        monkeypatch.setenv(CACHE_ENV, off)
        assert not dict_cache_enabled()
    monkeypatch.setenv(CACHE_ENV, "1")
    assert dict_cache_enabled()
    assert dict_cache_enabled(flag=True)
    assert not dict_cache_enabled(flag=False)


def test_execution_byte_identical_with_cache_off(monkeypatch):
    sql = (
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid AND u.city = 'tor' GROUP BY u.city"
    )
    results = {}
    for flag in ("1", "0"):
        monkeypatch.setenv(CACHE_ENV, flag)
        db = load_city_database()
        first = db.execute(sql)
        again = db.execute(sql)  # warm plan + dictionary caches
        results[flag] = (
            sorted(first.rows()), first.elapsed,
            sorted(again.rows()), again.elapsed,
        )
    assert results["1"] == results["0"]


def test_statistics_byte_identical_with_cache_off(monkeypatch):
    reports = {}
    for flag in ("1", "0"):
        monkeypatch.setenv(CACHE_ENV, flag)
        db = load_city_database()
        stats = db.statistics.table("orders")
        reports[flag] = {
            name: (
                cs.n_distinct,
                list(cs.mcv_values),
                list(cs.mcv_fractions),
            )
            for name, cs in stats.columns.items()
        }
    assert reports["1"] == reports["0"]


def test_database_cache_stats_exposes_dict_cache(city_db):
    city_db.column_dictionary("users", "city")
    city_db.column_dictionary("users", "city")
    snapshot = city_db.cache_stats()["dict_cache"]
    assert snapshot["hits"] >= 1
    assert snapshot["misses"] >= 1
    assert 0.0 <= snapshot["hit_rate"] <= 1.0


def test_database_invalidation_drops_stale_dictionaries(city_db):
    d1 = city_db.column_dictionary("orders", "amount")
    city_db.insert_rows(
        "orders",
        {"oid": [99_999], "uid": [1], "city": ["tor"], "amount": [55]},
    )
    d2 = city_db.column_dictionary("orders", "amount")
    assert d2 is not d1
    assert d2.row_count == d1.row_count + 1
