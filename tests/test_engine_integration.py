"""Engine-level integration: A/E/H measures, builds, inserts."""

import numpy as np
import pytest

from repro.common.errors import CatalogError
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)

from conftest import load_city_database


def test_execute_returns_query_result(city_db_p):
    result = city_db_p.execute("SELECT COUNT(*) FROM users u")
    assert result.rows() == [(500,)]
    assert result.elapsed > 0
    assert not result.timed_out
    assert result.plan is not None
    assert "SELECT" in result.sql


def test_unknown_table_raises(city_db_p):
    with pytest.raises(Exception):
        city_db_p.execute("SELECT x FROM missing")
    with pytest.raises(CatalogError):
        city_db_p.table("missing")


def test_estimate_matches_actual_with_exact_cardinalities(city_db_p):
    """Single-table scans have exact estimates: E == A."""
    sql = "SELECT u.city, COUNT(*) FROM users u GROUP BY u.city"
    estimate = city_db_p.estimate(sql)
    actual = city_db_p.execute(sql).elapsed
    assert estimate == pytest.approx(actual, rel=0.05)


def test_insert_cost_grows_with_index_count():
    db = load_city_database(n_users=200, n_orders=1000)
    batch = {
        "oid": np.arange(10_000, 10_200),
        "uid": np.arange(200) % 200,
        "city": np.array(["tor"] * 200, dtype=object),
        "amount": np.ones(200, dtype=np.int64),
    }
    db.apply_configuration(primary_configuration(db.catalog))
    cost_p = db.insert_rows("orders", batch)

    db2 = load_city_database(n_users=200, n_orders=1000)
    db2.apply_configuration(one_column_configuration(db2.catalog))
    cost_1c = db2.insert_rows("orders", batch)
    assert cost_1c > cost_p, "1C maintains more indexes per insert"


def test_insert_cost_linear_in_rows():
    db = load_city_database(n_users=200, n_orders=1000)
    db.apply_configuration(one_column_configuration(db.catalog))

    def batch(n, base):
        return {
            "oid": np.arange(base, base + n),
            "uid": np.arange(n) % 200,
            "city": np.array(["tor"] * n, dtype=object),
            "amount": np.ones(n, dtype=np.int64),
        }

    small = db.insert_rows("orders", batch(100, 20_000))
    large = db.insert_rows("orders", batch(1000, 30_000))
    assert large == pytest.approx(10 * small, rel=0.35)


def test_insert_keeps_queries_correct(city_db_1c):
    sql = "SELECT COUNT(*) FROM orders o WHERE o.uid = 77"
    before = city_db_1c.execute(sql).rows()[0][0]
    city_db_1c.insert_rows(
        "orders",
        {
            "oid": np.array([99_991, 99_992]),
            "uid": np.array([77, 77]),
            "city": np.array(["tor", "mtl"], dtype=object),
            "amount": np.array([1, 2]),
        },
    )
    after = city_db_1c.execute(sql).rows()[0][0]
    assert after == before + 2


def test_apply_configuration_resets_indexes(city_db):
    city_db.apply_configuration(one_column_configuration(city_db.catalog))
    assert city_db.configuration.secondary_indexes()
    city_db.apply_configuration(primary_configuration(city_db.catalog))
    assert not city_db.configuration.secondary_indexes()


def test_hypothetical_vs_built_estimates_ordering(city_db):
    """H (hypothetical) is never more optimistic than E (built)."""
    city_db.apply_configuration(primary_configuration(city_db.catalog))
    sql = (
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 "
        "GROUP BY o.city"
    )
    one_c = one_column_configuration(city_db.catalog)
    hypothetical = city_db.estimate_hypothetical(sql, one_c)
    city_db.apply_configuration(one_c)
    built = city_db.estimate(sql)
    assert built <= hypothetical * 1.0001


def test_nref_end_to_end(tiny_nref):
    """A NREF2J-style query runs and agrees across configurations."""
    sql = (
        "SELECT r.lineage, COUNT(*) FROM taxonomy r, taxonomy r2 "
        "WHERE r.lineage = r2.lineage AND r.taxon_id = 20 "
        "GROUP BY r.lineage"
    )
    p_rows = sorted(tiny_nref.execute(sql).rows() or [])
    tiny_nref.apply_configuration(
        one_column_configuration(tiny_nref.catalog, name="1C")
    )
    tiny_nref.collect_statistics()
    c_rows = sorted(tiny_nref.execute(sql).rows() or [])
    assert p_rows == c_rows
    tiny_nref.apply_configuration(
        primary_configuration(tiny_nref.catalog, name="P")
    )
    tiny_nref.collect_statistics()


def test_tpch_end_to_end(tiny_tpch):
    sql = (
        "SELECT t.ps_availqty, COUNT(*) FROM orders r, lineitem s, "
        "partsupp t WHERE r.o_orderkey = s.l_orderkey "
        "AND s.l_partkey = t.ps_partkey AND s.l_quantity = 1 "
        "GROUP BY t.ps_availqty"
    )
    result = tiny_tpch.execute(sql)
    assert not result.timed_out
    total = sum(n for _, n in result.rows())
    # Cross-check the grand total with numpy.
    import numpy as np

    li = tiny_tpch.table("lineitem")
    ps = tiny_tpch.table("partsupp")
    sel = li.column("l_quantity") == 1
    pk, counts = np.unique(
        ps.column("ps_partkey"), return_counts=True
    )
    match = dict(zip(pk.tolist(), counts.tolist()))
    expected = sum(
        match.get(int(p), 0) for p in li.column("l_partkey")[sel]
    )
    assert total == expected
