"""Planner environment metadata: IndexInfo, ViewInfo, PlannerEnv."""

from repro.index.definition import IndexDefinition
from repro.optimizer.environment import IndexInfo, PlannerEnv, ViewInfo
from repro.views.matview import MatViewDefinition, ViewColumn

from conftest import load_city_database


def test_hypothetical_index_is_conservative():
    definition = IndexDefinition(table="t", columns=("a",))
    info = IndexInfo.hypothetical_on(definition, 100_000, 8)
    assert info.hypothetical
    assert info.cluster_factor == 1.0, (
        "without building the index the system must assume the worst "
        "correlation (the Figure 10 mechanism)"
    )
    assert info.data is None
    assert info.entries == 100_000
    assert info.leaf_pages > 0 and info.height >= 1


def test_from_data_carries_measurements():
    db = load_city_database(n_users=300, n_orders=900)
    from repro.index.data import IndexData

    definition = IndexDefinition(table="users", columns=("uid",))
    data = IndexData(definition, db.table("users"))
    info = IndexInfo.from_data(data)
    assert not info.hypothetical
    assert info.data is data
    assert info.cluster_factor < 1.0, "uid order matches the heap"


def test_hypothetical_size_overhead_factor():
    definition = IndexDefinition(table="t", columns=("a",))
    lean = IndexInfo.hypothetical_on(definition, 50_000, 8, 1.0)
    fat = IndexInfo.hypothetical_on(definition, 50_000, 8, 2.0)
    assert fat.leaf_pages > lean.leaf_pages


def test_view_info_index_lookup():
    vdef = MatViewDefinition(
        tables=("orders",),
        group_columns=(ViewColumn("orders", "uid"),),
    )
    ix = IndexInfo.hypothetical_on(
        IndexDefinition(table=vdef.name, columns=("orders__uid",)),
        1000,
        8,
    )
    vinfo = ViewInfo(
        definition=vdef, rows=1000, page_count=3, row_width=16,
        indexes=[ix],
    )
    assert vinfo.index_on("orders__uid") is ix
    assert vinfo.index_on("cnt") is None


def test_planner_env_queries():
    db = load_city_database(n_users=100, n_orders=100)
    vdef = MatViewDefinition(
        tables=("orders",),
        group_columns=(ViewColumn("orders", "uid"),),
    )
    join_vdef = MatViewDefinition(
        tables=("users", "orders"),
        join_pred=(("users", "uid"), ("orders", "uid")),
        group_columns=(ViewColumn("users", "city"),),
    )
    env = PlannerEnv(
        catalog=db.catalog,
        estimator=None,
        hardware=db.system.hardware,
        indexes={"users": ["sentinel"]},
        views=[
            ViewInfo(vdef, 10, 1, 16),
            ViewInfo(join_vdef, 10, 1, 16),
        ],
    )
    assert env.indexes_on("users") == ["sentinel"]
    assert env.indexes_on("orders") == []
    assert len(env.views_on_table("orders")) == 1
    assert len(env.join_views()) == 1
