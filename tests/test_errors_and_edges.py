"""Error paths and miscellaneous edge cases across modules."""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnDef, ForeignKey, TableSchema
from repro.common.errors import (
    CatalogError,
    ParseError,
    QueryTimeout,
    RecommenderGaveUp,
)
from repro.storage.table import Table
from repro.storage.types import integer, varchar


def test_schema_validation_errors():
    with pytest.raises(CatalogError, match="duplicate column"):
        TableSchema("t", [
            ColumnDef("a", integer()), ColumnDef("a", integer()),
        ])
    with pytest.raises(CatalogError, match="primary key"):
        TableSchema("t", [ColumnDef("a", integer())],
                    primary_key=("missing",))
    with pytest.raises(CatalogError, match="foreign key"):
        TableSchema(
            "t",
            [ColumnDef("a", integer())],
            foreign_keys=[ForeignKey(("missing",), "u", ("x",))],
        )


def test_catalog_duplicate_and_missing():
    schema = TableSchema("t", [ColumnDef("a", integer())])
    catalog = Catalog([schema])
    with pytest.raises(CatalogError, match="already"):
        catalog.add_table(schema)
    with pytest.raises(CatalogError, match="no table"):
        catalog.table("u")
    assert catalog.has_table("t")
    assert not catalog.has_table("u")


def test_catalog_domains_and_join_pairs():
    users = TableSchema("users", [
        ColumnDef("uid", integer(), "id"),
        ColumnDef("name", varchar(8), "name"),
    ])
    orders = TableSchema("orders", [
        ColumnDef("uid", integer(), "id"),
        ColumnDef("note", varchar(8), ""),
    ])
    catalog = Catalog([users, orders])
    assert catalog.domains() == ["id", "name"]
    pairs = catalog.join_pairs()
    assert ("users", "uid", "orders", "uid") in pairs
    assert not any(
        "note" in (ca, cb) for _, ca, __, cb in pairs
    ), "domainless columns never join"
    with_self = catalog.join_pairs(same_table=True)
    assert ("users", "name", "users", "name") in with_self


def test_table_validation():
    schema = TableSchema("t", [
        ColumnDef("a", integer()), ColumnDef("b", integer()),
    ])
    with pytest.raises(CatalogError, match="without columns"):
        Table(schema, {"a": [1, 2]})
    with pytest.raises(CatalogError, match="differing lengths"):
        Table(schema, {"a": [1, 2], "b": [1]})
    table = Table(schema, {"a": [1, 2], "b": [3, 4]})
    with pytest.raises(CatalogError):
        table.column("c")
    with pytest.raises(CatalogError, match="missing column"):
        table.append_rows({"a": [5]})


def test_empty_table_operations():
    schema = TableSchema("t", [ColumnDef("a", integer())])
    table = Table(schema)
    assert table.row_count == 0
    assert table.page_count() == 1
    assert table.take(np.array([], dtype=np.int64), ["a"])["a"].size == 0


def test_parse_error_reports_position():
    err = ParseError("boom", position=17)
    assert "offset 17" in str(err)
    assert err.position == 17


def test_recommender_gave_up_message():
    err = RecommenderGaveUp("too many candidates")
    assert "too many candidates" in str(err)
    assert isinstance(err, Exception)


def test_query_timeout_str():
    err = QueryTimeout(1800.0, 1923.4)
    assert "1800" in str(err)


def test_execute_on_empty_table():
    from repro import Database
    from repro.engine.systems import system_a
    from repro.engine.configuration import primary_configuration

    schema = TableSchema("t", [
        ColumnDef("a", integer(), "x"), ColumnDef("b", varchar(4), "y"),
    ], primary_key=("a",))
    db = Database(Catalog([schema]), system_a())
    db.load_table("t", {"a": [], "b": []})
    db.collect_statistics()
    db.apply_configuration(primary_configuration(db.catalog))
    result = db.execute("SELECT t.b, COUNT(*) FROM t GROUP BY t.b")
    assert result.rows() == []
    result2 = db.execute("SELECT COUNT(*) FROM t WHERE t.a = 5")
    assert result2.rows() == []


def test_single_row_table_queries():
    from repro import Database
    from repro.engine.systems import system_a
    from repro.engine.configuration import one_column_configuration

    schema = TableSchema("t", [
        ColumnDef("a", integer(), "x"), ColumnDef("b", varchar(4), "y"),
    ], primary_key=("a",))
    db = Database(Catalog([schema]), system_a())
    db.load_table("t", {"a": [7], "b": ["z"]})
    db.collect_statistics()
    db.apply_configuration(one_column_configuration(db.catalog))
    result = db.execute("SELECT t.b, COUNT(*) FROM t GROUP BY t.b")
    assert result.rows() == [("z", 1)]
