"""Cardinality estimator unit tests."""

import pytest

from repro.optimizer.estimator import Estimator
from repro.optimizer.policy import EstimatorPolicy
from repro.sql.binder import BoundColumn, Filter, SemiJoin
from repro.stats.table_stats import StatisticsCatalog, TableStats

from conftest import load_city_database


@pytest.fixture
def stats():
    db = load_city_database(n_users=1000, n_orders=8000, seed=2)
    catalog = StatisticsCatalog()
    for name in ("users", "orders"):
        catalog.put(TableStats.collect(db.table(name)))
    return catalog


def make_estimator(stats, **kwargs):
    return Estimator(stats, EstimatorPolicy(**kwargs))


def flt(alias, column, op, value):
    return Filter(BoundColumn(alias, column), op, value)


def test_table_shape(stats):
    est = make_estimator(stats)
    assert est.table_rows("users") == 1000
    assert est.table_pages("users") >= 1
    assert est.n_distinct("users", "uid") == 1000


def test_eq_selectivity_uses_mcvs(stats):
    est = make_estimator(stats)
    sel = est.filter_selectivity("users", flt("u", "city", "=", "tor"))
    assert 0.1 < sel < 0.4
    hypothetical = make_estimator(stats, use_mcvs=False)
    uniform = hypothetical.filter_selectivity(
        "users", flt("u", "city", "=", "tor")
    )
    assert uniform == pytest.approx(1 / 5)


def test_inequality_and_range_selectivity(stats):
    est = make_estimator(stats)
    ne = est.filter_selectivity("users", flt("u", "city", "<>", "tor"))
    eq = est.filter_selectivity("users", flt("u", "city", "=", "tor"))
    assert ne == pytest.approx(1 - eq)
    rng = est.filter_selectivity("users", flt("u", "age", "<", 30))
    assert rng == pytest.approx(1 / 3)


def test_join_selectivity_containment(stats):
    est = make_estimator(stats)
    sel = est.join_selectivity("users", "uid", "orders", "uid")
    assert sel == pytest.approx(1 / 1000)
    rows = est.join_rows(1000, 8000, sel)
    assert rows == pytest.approx(8000)


def test_semijoin_selectivity_profile_vs_default(stats):
    semi = SemiJoin(
        target=BoundColumn("o", "uid"),
        sub_table="orders",
        sub_column="uid",
        having_op="<",
        having_value=4,
    )
    with_profile = make_estimator(stats)
    sel = with_profile.semijoin_selectivity("orders", semi)
    assert 0 <= sel <= 1
    degraded = make_estimator(stats, use_frequency_profile=False)
    assert degraded.semijoin_selectivity("orders", semi) == 0.25


def test_semijoin_allowed_values(stats):
    semi = SemiJoin(
        target=BoundColumn("o", "uid"),
        sub_table="orders",
        sub_column="uid",
        having_op="<",
        having_value=100,
    )
    est = make_estimator(stats)
    allowed = est.semijoin_allowed_values(semi)
    # Every uid occurs fewer than 100 times: all distinct values allowed.
    assert allowed == pytest.approx(
        est.n_distinct("orders", "uid"), rel=0.2
    )


def test_group_count_damped_and_capped(stats):
    est = make_estimator(stats)
    assert est.group_count(100, []) == 1.0
    assert est.group_count(50, [1000, 1000]) == 50
    moderate = est.group_count(10_000, [5, 7])
    assert 5 <= moderate <= 35


def test_scaled_ndv_shrinks_with_selection(stats):
    est = make_estimator(stats)
    full = est.scaled_ndv("users", "city", 1000)
    tiny = est.scaled_ndv("users", "city", 2)
    assert tiny < full <= 5.0 + 1e-9


def test_hypothetical_policy_roundtrip():
    policy = EstimatorPolicy()
    degraded = policy.as_hypothetical()
    assert degraded.hypothetical
    assert not degraded.use_mcvs
    assert not degraded.use_frequency_profile
    assert policy.use_mcvs, "original unchanged (frozen dataclass)"
