"""Executor correctness: every query is cross-checked against a naive
Python evaluator, in both the P and 1C configurations (different plans,
identical results)."""

import collections

import numpy as np
import pytest

from repro.common.errors import QueryTimeout
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)




def rows_sorted(result):
    return sorted(result.rows())


def run_both_configs(city_db, sql):
    city_db.apply_configuration(primary_configuration(city_db.catalog))
    p = city_db.execute(sql)
    city_db.apply_configuration(one_column_configuration(city_db.catalog))
    c = city_db.execute(sql)
    assert rows_sorted(p) == rows_sorted(c), "P and 1C plans disagree"
    return p


def test_filter_and_group(city_db):
    sql = (
        "SELECT u.city, COUNT(*) FROM users u "
        "WHERE u.age = 30 GROUP BY u.city"
    )
    result = run_both_configs(city_db, sql)
    users = city_db.table("users")
    counter = collections.Counter(
        c for c, a in zip(users.column("city"), users.column("age"))
        if a == 30
    )
    assert rows_sorted(result) == sorted(counter.items())


def test_join_group_count(city_db):
    sql = (
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid AND u.age = 30 GROUP BY u.city"
    )
    result = run_both_configs(city_db, sql)
    users, orders = city_db.table("users"), city_db.table("orders")
    city_of = {
        u: c for u, c, a in zip(
            users.column("uid"), users.column("city"), users.column("age")
        ) if a == 30
    }
    counter = collections.Counter(
        city_of[u] for u in orders.column("uid") if u in city_of
    )
    assert rows_sorted(result) == sorted(counter.items())


def test_count_distinct(city_db):
    sql = (
        "SELECT o.city, COUNT(DISTINCT o.uid) FROM orders o "
        "GROUP BY o.city"
    )
    result = run_both_configs(city_db, sql)
    orders = city_db.table("orders")
    groups = collections.defaultdict(set)
    for c, u in zip(orders.column("city"), orders.column("uid")):
        groups[c].add(u)
    assert rows_sorted(result) == sorted(
        (c, len(s)) for c, s in groups.items()
    )


def test_sum_avg_min_max(city_db):
    sql = (
        "SELECT o.city, SUM(o.amount), AVG(o.amount), MIN(o.amount), "
        "MAX(o.amount) FROM orders o GROUP BY o.city"
    )
    result = run_both_configs(city_db, sql)
    orders = city_db.table("orders")
    groups = collections.defaultdict(list)
    for c, a in zip(orders.column("city"), orders.column("amount")):
        groups[c].append(int(a))
    expected = sorted(
        (
            c,
            float(sum(v)),
            pytest.approx(sum(v) / len(v)),
            min(v),
            max(v),
        )
        for c, v in groups.items()
    )
    assert rows_sorted(result) == expected


def test_grand_total_aggregate(city_db):
    sql = "SELECT COUNT(*) FROM orders o WHERE o.city = 'tor'"
    result = run_both_configs(city_db, sql)
    orders = city_db.table("orders")
    expected = int(np.sum(orders.column("city") == "tor"))
    assert result.rows() == [(expected,)]


def test_semijoin_membership(city_db):
    sql = (
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid IN "
        "(SELECT uid FROM orders GROUP BY uid HAVING COUNT(*) < 4) "
        "GROUP BY o.city"
    )
    result = run_both_configs(city_db, sql)
    orders = city_db.table("orders")
    freq = collections.Counter(orders.column("uid").tolist())
    counter = collections.Counter(
        c for c, u in zip(orders.column("city"), orders.column("uid"))
        if freq[u] < 4
    )
    assert rows_sorted(result) == sorted(counter.items())


def test_self_join(city_db):
    sql = (
        "SELECT u1.city, COUNT(*) FROM users u1, users u2 "
        "WHERE u1.age = u2.age AND u1.city = 'tor' GROUP BY u1.city"
    )
    result = run_both_configs(city_db, sql)
    users = city_db.table("users")
    ages = collections.Counter(users.column("age").tolist())
    total = sum(
        ages[a]
        for a, c in zip(users.column("age"), users.column("city"))
        if c == "tor"
    )
    assert result.rows() == [("tor", total)]


def test_empty_result(city_db):
    sql = (
        "SELECT u.city, COUNT(*) FROM users u "
        "WHERE u.city = 'nowhere' GROUP BY u.city"
    )
    result = run_both_configs(city_db, sql)
    assert result.rows() == []


def test_projection_without_aggregates(city_db_p):
    sql = "SELECT u.uid, u.city FROM users u WHERE u.age = 30"
    result = city_db_p.execute(sql)
    users = city_db_p.table("users")
    expected = sorted(
        (int(u), c)
        for u, c, a in zip(
            users.column("uid"), users.column("city"), users.column("age")
        )
        if a == 30
    )
    assert rows_sorted(result) == expected


def test_timeout_is_reported(city_db_p):
    sql = (
        "SELECT u1.city, COUNT(*) FROM users u1, users u2 "
        "WHERE u1.age = u2.age GROUP BY u1.city"
    )
    result = city_db_p.execute(sql, timeout=0.001)
    assert result.timed_out
    assert result.elapsed == pytest.approx(0.001)
    assert result.rows() is None


def test_virtual_clock_accumulates(city_db_p):
    fast = city_db_p.execute("SELECT COUNT(*) FROM users u")
    slow = city_db_p.execute(
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid GROUP BY u.city"
    )
    assert 0 < fast.elapsed < slow.elapsed


def test_determinism(city_db_p):
    sql = (
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid GROUP BY u.city"
    )
    first = city_db_p.execute(sql)
    second = city_db_p.execute(sql)
    assert first.elapsed == second.elapsed
    assert rows_sorted(first) == rows_sorted(second)


def test_query_timeout_exception_fields():
    err = QueryTimeout(10.0, 12.5)
    assert err.limit_seconds == 10.0
    assert err.charged_seconds == 12.5
