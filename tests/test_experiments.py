"""Every experiment driver runs end-to-end at a tiny scale.

These are integration tests for the harness plumbing; the full-scale runs
live under ``benchmarks/``.
"""

import pytest

from repro.bench.context import BenchContext, BenchSettings
from repro.bench import experiments


@pytest.fixture(scope="module")
def ctx():
    return BenchContext(
        BenchSettings(scale=0.04, workload_size=8, timeout=1800.0)
    )


def test_figure_1_2(ctx):
    result = experiments.figure_1_2(ctx)
    assert "Figure 1" in result.text
    assert "t_out" in result.text
    assert result.data["P"]["histogram"]


@pytest.mark.parametrize(
    "figure", ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]
)
def test_cfc_figures(ctx, figure):
    result = experiments.figure_cfc(figure, ctx)
    assert result.experiment == figure
    assert result.data["P"] is not None
    assert result.data["1C"] is not None
    cfc = result.data["1C"]["cfc"]
    assert cfc == sorted(cfc), "CFC curves are monotone"
    assert "goal" in result.data


def test_figure_4_has_no_recommendation(ctx):
    result = experiments.figure_cfc("fig4", ctx)
    # At tiny scale the candidate pool may stay under System A's limit;
    # the driver must handle both outcomes without error.
    assert "R" in result.data


def test_figure_10(ctx):
    result = experiments.figure_10(ctx)
    assert "EP" in result.data
    assert len(result.data["EP"]) == 8


def test_figure_11(ctx):
    result = experiments.figure_11(ctx)
    for label in ("AIR", "EIR", "HIR"):
        assert label in result.data
        assert "summary" in result.data[label]


def test_table_1(ctx):
    result = experiments.table_1(ctx)
    assert "A NREF P" in result.text
    assert "C UnTH 1C" in result.text
    p = result.data["A NREF P"]
    one_c = result.data["A NREF 1C"]
    assert one_c["bytes"] > p["bytes"]
    assert one_c["build_seconds"] > p["build_seconds"]


def test_table_2(ctx):
    result = experiments.table_2(ctx)
    assert "Totals" in result.text


def test_table_3(ctx):
    result = experiments.table_3(ctx)
    assert "Totals" in result.text


def test_section_4_3(ctx):
    result = experiments.section_4_3(ctx)
    assert "lower bound" in result.text
    assert result.data["P"]["lower_bound"] >= \
        result.data["P"]["completed_total"]


def test_section_4_4(ctx):
    result = experiments.section_4_4(ctx, batches=(1000, 5000))
    assert "ms/tuple" in result.text
    rates = result.data["insert_rate"]
    assert rates["1C"] > rates["P"], (
        "more indexes make inserts slower (the paper's §4.4 premise)"
    )


def test_registry_covers_every_artifact():
    expected = {
        "fig1-2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "fig9", "fig10", "fig11", "tab1", "tab2", "tab3", "sec43",
        "sec44",
    }
    assert set(experiments.ALL_EXPERIMENTS) == expected
