"""The goal-driven recommender (the paper's Section 6 proposal)."""

import pytest

from repro.analysis.cfc import CumulativeFrequencyCurve
from repro.analysis.goals import StepGoal
from repro.analysis.measurements import measure_workload
from repro.engine.configuration import primary_configuration
from repro.recommender.goal_driven import GoalDrivenRecommender
from repro.recommender.profiles import RecommenderProfile
from repro.workload.workload import Workload, make_instance

from conftest import load_city_database


@pytest.fixture
def db():
    db = load_city_database(n_users=4000, n_orders=30000, seed=13)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    return db


def point_workload(uids):
    return Workload(
        "W",
        [
            make_instance(
                f"SELECT o.city, COUNT(*) FROM orders o "
                f"WHERE o.uid = {u} GROUP BY o.city",
                "W",
                u=u,
            )
            for u in uids
        ],
    )


def test_goal_already_met_selects_nothing(db):
    workload = point_workload([1, 2, 3])
    lax_goal = StepGoal(steps=((10_000.0, 0.5),))
    rec = GoalDrivenRecommender(
        db, lax_goal, RecommenderProfile("g", min_improvement=0.001)
    )
    outcome = rec.recommend_for_goal(workload, budget_bytes=10**9)
    assert outcome.goal_met
    assert outcome.selected == []
    assert outcome.iterations == 0


def test_goal_drives_index_selection_and_stops(db):
    workload = point_workload([1, 7, 19, 42, 77, 120])
    # P-config point lookups scan orders (~tens of virtual seconds);
    # demand that most finish fast.
    goal = StepGoal(steps=((10.0, 0.8),))
    rec = GoalDrivenRecommender(
        db, goal, RecommenderProfile("g", min_improvement=0.001)
    )
    outcome = rec.recommend_for_goal(workload, budget_bytes=10**9)
    assert outcome.selected, "the goal requires at least one index"
    assert outcome.goal_met
    assert outcome.estimated_margin > 0

    # The goal-driven advisor stops early: it should not have grabbed
    # every candidate in sight.
    assert len(outcome.selected) <= 3

    # And the *actual* curve clears the goal too.
    db.apply_configuration(outcome.configuration)
    db.collect_statistics()
    measurement = measure_workload(db, workload)
    curve = CumulativeFrequencyCurve(measurement)
    assert goal.satisfied_by(curve)


def test_infeasible_goal_reports_not_met(db):
    workload = point_workload([1, 7, 19])
    impossible = StepGoal(steps=((1e-6, 0.99),))
    rec = GoalDrivenRecommender(
        db, impossible, RecommenderProfile("g", min_improvement=0.001)
    )
    outcome = rec.recommend_for_goal(workload, budget_bytes=10**9)
    assert not outcome.goal_met
    assert outcome.estimated_margin <= 0


def test_budget_constrains_goal_search(db):
    workload = point_workload([1, 7, 19, 42])
    goal = StepGoal(steps=((10.0, 0.9),))
    rec = GoalDrivenRecommender(
        db, goal, RecommenderProfile("g", min_improvement=0.001)
    )
    outcome = rec.recommend_for_goal(workload, budget_bytes=1024)
    assert outcome.used_bytes <= 1024
    assert not outcome.selected


def test_weighted_workload_shifts_the_curve(db):
    heavy = make_instance(
        "SELECT o.city, COUNT(*) FROM orders o GROUP BY o.city",
        "W",
        weight=9.0,
    )
    light = make_instance(
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 "
        "GROUP BY o.city",
        "W",
        weight=1.0,
    )
    workload = Workload("W", [heavy, light])
    measurement = measure_workload(db, workload)
    curve = CumulativeFrequencyCurve(measurement)
    # The slow scan carries 90% of the weight: no point below its time
    # can clear 0.5.
    slow_time = measurement.elapsed[0]
    assert curve([slow_time * 0.99])[0] <= 0.1 + 1e-9
    assert measurement.lower_bound_total() == pytest.approx(
        9 * measurement.elapsed[0] + measurement.elapsed[1]
    )