"""Built index data: probes, sizes, cluster factors, B+-tree agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.data import IndexData, gather_ranges
from repro.index.definition import (
    IndexDefinition,
    estimate_index_size,
    heap_fetch_pages,
)


def make_index(city_db, table, columns):
    definition = IndexDefinition(table=table, columns=tuple(columns))
    return IndexData(definition, city_db.table(table))


def test_definition_validation():
    with pytest.raises(ValueError):
        IndexDefinition(table="t", columns=())
    with pytest.raises(ValueError):
        IndexDefinition(table="t", columns=("a", "a"))
    ix = IndexDefinition(table="t", columns=("a", "b"))
    assert ix.width == 2
    assert ix.covers(["a"]) and ix.covers(["a", "b"])
    assert not ix.covers(["c"])
    assert ix.has_prefix(["a"]) and ix.has_prefix(["b", "a"])
    assert not ix.has_prefix(["b"])


def test_lookup_eq_single_column(city_db):
    index = make_index(city_db, "users", ["city"])
    column = city_db.table("users").column("city")
    for value in ("tor", "mtl", "nowhere"):
        got = sorted(index.lookup_eq((value,)).tolist())
        expected = sorted(np.flatnonzero(column == value).tolist())
        assert got == expected


def test_lookup_eq_composite_prefix(city_db):
    index = make_index(city_db, "users", ["city", "age"])
    users = city_db.table("users")
    city, age = users.column("city"), users.column("age")
    got = sorted(index.lookup_eq(("tor", 30)).tolist())
    expected = sorted(
        np.flatnonzero((city == "tor") & (age == 30)).tolist()
    )
    assert got == expected
    # A 1-column prefix also works.
    assert sorted(index.lookup_eq(("tor",)).tolist()) == sorted(
        np.flatnonzero(city == "tor").tolist()
    )
    with pytest.raises(ValueError):
        index.lookup_eq(("tor", 30, 1))


def test_probe_many_matches_loop(city_db):
    index = make_index(city_db, "orders", ["uid"])
    uid = city_db.table("orders").column("uid")
    probes = np.array([0, 1, 2, 9999, 1])
    (row_ids, probe_idx), (lows, highs) = index.probe_many(probes)
    assert len(row_ids) == len(probe_idx)
    assert (highs - lows).sum() == len(row_ids)
    for p, expected in enumerate(probes):
        got = sorted(row_ids[probe_idx == p].tolist())
        assert got == sorted(np.flatnonzero(uid == expected).tolist())


def test_count_many(city_db):
    index = make_index(city_db, "orders", ["uid"])
    uid = city_db.table("orders").column("uid")
    probes = np.arange(10)
    counts = index.count_many(probes)
    for p, c in zip(probes, counts):
        assert c == int(np.sum(uid == p))


def test_tree_agrees_with_arrays(city_db):
    index = make_index(city_db, "users", ["city", "age"])
    tree = index.tree()
    tree.check_invariants()
    assert len(tree) == index.entry_count
    got = sorted(tree.search(("tor", 30)))
    assert got == sorted(index.lookup_eq(("tor", 30)).tolist())


def test_cluster_factor_bounds(city_db):
    clustered = make_index(city_db, "users", ["uid"])  # insertion order
    scattered = make_index(city_db, "users", ["city"])
    assert 0 < clustered.cluster_factor <= 1.0
    assert 0 < scattered.cluster_factor <= 1.0
    # uid follows the heap order, so its cluster factor is far smaller.
    assert clustered.cluster_factor < scattered.cluster_factor


def test_size_estimate_properties():
    small = estimate_index_size(100, 8)
    big = estimate_index_size(1_000_000, 8)
    assert big.leaf_pages > small.leaf_pages
    assert big.height >= small.height
    assert big.byte_size > small.byte_size
    inflated = estimate_index_size(1_000_000, 8, overhead_factor=2.0)
    assert inflated.byte_size > big.byte_size


def test_heap_fetch_pages_monotone():
    previous = 0.0
    for k in (0, 1, 10, 100, 1000, 10_000):
        pages = heap_fetch_pages(k, 10_000, 500)
        assert pages >= previous
        assert pages <= 500
        previous = pages


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(st.integers(0, 20), min_size=1, max_size=200),
    probes=st.lists(st.integers(0, 25), min_size=0, max_size=50),
)
def test_property_gather_ranges(data, probes):
    """gather_ranges equals the naive per-range concatenation."""
    values = np.sort(np.array(data))
    probes = np.array(probes)
    lows = np.searchsorted(values, probes, side="left")
    highs = np.searchsorted(values, probes, side="right")
    got_values, got_ranges = gather_ranges(values, lows, highs)
    expected_values, expected_ranges = [], []
    for i, (lo, hi) in enumerate(zip(lows, highs)):
        expected_values.extend(values[lo:hi].tolist())
        expected_ranges.extend([i] * (hi - lo))
    assert got_values.tolist() == expected_values
    assert got_ranges.tolist() == expected_ranges
