"""Remaining index size/geometry math."""


from repro.common.hardware import PAGE_SIZE
from repro.index.definition import (
    IndexDefinition,
    ROWID_WIDTH,
    estimate_index_size,
    pages_for_rows,
)


def test_index_names_stable_and_distinct():
    a = IndexDefinition(table="t", columns=("x",))
    b = IndexDefinition(table="t", columns=("x", "y"))
    pk = IndexDefinition(table="t", columns=("x",), is_primary=True)
    assert a.name == "ix_t__x"
    assert b.name == "ix_t__x_y"
    assert pk.name == "pk_t__x"
    assert len({a.name, b.name, pk.name}) == 3


def test_entries_per_leaf_math():
    size = estimate_index_size(10_000, key_width=8)
    per_leaf = PAGE_SIZE // (8 + ROWID_WIDTH + 4)
    assert size.leaf_pages == -(-10_000 // per_leaf)
    assert size.entries == 10_000


def test_height_grows_logarithmically():
    h_small = estimate_index_size(100, 8).height
    h_big = estimate_index_size(50_000_000, 8).height
    assert h_small <= 2
    assert 2 <= h_big <= 5


def test_zero_row_index():
    size = estimate_index_size(0, 8)
    assert size.leaf_pages == 1
    assert size.height == 1
    assert size.byte_size >= PAGE_SIZE


def test_pages_for_rows():
    assert pages_for_rows(0, 100) == 1
    assert pages_for_rows(100, 100) == -(-100 * 100 // PAGE_SIZE)


def test_wide_keys_fit_fewer_entries():
    narrow = estimate_index_size(100_000, 8)
    wide = estimate_index_size(100_000, 120)
    assert wide.leaf_pages > narrow.leaf_pages
    assert wide.byte_size > narrow.byte_size
