"""Tests of the REPRO_* knob registry (repro.common.knobs).

The registry is the single sanctioned accessor for ``REPRO_*``
environment variables (the ``KNB001`` lint rule enforces that); these
tests pin its semantics — declaration validation, idempotent
re-registration, ``text``/``flag`` parsing — and enumerate the full
knob set, so every registered knob is named in at least one test (the
third leg of the KNB001 contract).
"""

import pytest

from repro.common import knobs


EXPECTED_KNOBS = {
    # runtime
    "REPRO_JOBS": "int",
    "REPRO_CACHE_DIR": "str",
    # bench scale
    "REPRO_SCALE": "float",
    "REPRO_WORKLOAD_SIZE": "int",
    "REPRO_TIMEOUT": "float",
    "REPRO_ABLATION_SCALE": "float",
    "REPRO_ABLATION_WORKLOAD": "int",
    # derived-result caches
    "REPRO_WHATIF_CACHE": "flag",
    "REPRO_DICT_CACHE": "flag",
    "REPRO_PLAN_TEMPLATES": "flag",
    "REPRO_SUBPLAN_CACHE": "flag",
    # storage / execution
    "REPRO_SHARDS": "int",
    "REPRO_SHARD_SCHEME": "str",
    "REPRO_SHARD_JOBS": "int",
    "REPRO_MORSEL_ROWS": "int",
    "REPRO_LATE_MAT": "flag",
    # tuning server
    "REPRO_SERVER_HOST": "str",
    "REPRO_SERVER_PORT": "int",
    "REPRO_SERVER_WORKERS": "int",
    "REPRO_SERVER_QUEUE": "int",
    "REPRO_SERVER_MAX_SESSIONS": "int",
    "REPRO_SERVER_SESSION_TTL": "float",
}


def test_every_expected_knob_is_registered_with_its_kind():
    registered = {k.name: k.kind for k in knobs.registered()}
    assert registered == EXPECTED_KNOBS


def test_registered_is_sorted_and_carries_descriptions():
    names = [k.name for k in knobs.registered()]
    assert names == sorted(names)
    for knob in knobs.registered():
        assert knob.description, f"{knob.name} has no description"


def test_register_rejects_bad_names():
    with pytest.raises(ValueError):
        knobs.register("NOT_A_KNOB")
    with pytest.raises(ValueError):
        knobs.register("repro_lowercase")


def test_register_is_idempotent_for_identical_declarations():
    knob = knobs.get("REPRO_JOBS")
    again = knobs.register(
        "REPRO_JOBS", kind=knob.kind, default=knob.default,
        description=knob.description, choices=knob.choices,
    )
    assert again is knobs.get("REPRO_JOBS")


def test_register_rejects_conflicting_redeclaration():
    with pytest.raises(ValueError):
        knobs.register("REPRO_JOBS", kind="float")


def test_text_returns_default_when_unset(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert knobs.text("REPRO_SCALE") is None
    assert knobs.text("REPRO_SCALE", "1.0") == "1.0"


def test_text_returns_raw_environment_value(monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOAD_SIZE", "12")
    assert knobs.text("REPRO_WORKLOAD_SIZE", "100") == "12"


def test_text_rejects_unregistered_names():
    with pytest.raises(KeyError):
        knobs.text("REPRO_NOT_REGISTERED")


def test_flag_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_WHATIF_CACHE", raising=False)
    assert knobs.flag("REPRO_WHATIF_CACHE") is True     # declared default
    for raw in ("0", "false", "no", "off", " OFF "):
        monkeypatch.setenv("REPRO_WHATIF_CACHE", raw)
        assert knobs.flag("REPRO_WHATIF_CACHE") is False
    monkeypatch.setenv("REPRO_WHATIF_CACHE", "1")
    assert knobs.flag("REPRO_WHATIF_CACHE") is True
    # The explicit override wins over the environment.
    assert knobs.flag("REPRO_WHATIF_CACHE", False) is False
    monkeypatch.setenv("REPRO_WHATIF_CACHE", "0")
    assert knobs.flag("REPRO_WHATIF_CACHE", True) is True


def test_choices_are_recorded_for_shard_scheme():
    knob = knobs.get("REPRO_SHARD_SCHEME")
    assert knob.choices == ("hash", "range")


def test_is_registered():
    assert knobs.is_registered("REPRO_MORSEL_ROWS")
    assert knobs.is_registered("REPRO_SHARDS")
    assert knobs.is_registered("REPRO_DICT_CACHE")
    assert knobs.is_registered("REPRO_PLAN_TEMPLATES")
    assert knobs.is_registered("REPRO_SUBPLAN_CACHE")
    assert knobs.is_registered("REPRO_SHARD_JOBS")
    assert knobs.is_registered("REPRO_LATE_MAT")
    assert not knobs.is_registered("REPRO_UNHEARD_OF")


def test_to_json_shape():
    payload = knobs.get("REPRO_SERVER_PORT").to_json()
    assert payload["name"] == "REPRO_SERVER_PORT"
    assert payload["kind"] == "int"


def test_server_knobs_cover_the_documented_surface():
    # One assertion per server knob keeps each name test-visible.
    assert knobs.get("REPRO_SERVER_HOST").default == "127.0.0.1"
    assert knobs.get("REPRO_SERVER_PORT").default == 8451
    assert knobs.get("REPRO_SERVER_WORKERS").default == 2
    assert knobs.get("REPRO_SERVER_QUEUE").default == 8
    assert knobs.get("REPRO_SERVER_MAX_SESSIONS").default == 8
    assert knobs.get("REPRO_SERVER_SESSION_TTL").default == 3600.0


def test_scale_knobs_defaults():
    assert knobs.get("REPRO_ABLATION_SCALE").default == 0.25
    assert knobs.get("REPRO_ABLATION_WORKLOAD").default == 25
    assert knobs.get("REPRO_TIMEOUT").default == 1800.0
    assert knobs.get("REPRO_CACHE_DIR").default is None
