"""Late-materialization executor: selection-vector batches, plan-time
column pruning, fused predicate kernels, and the ``REPRO_LATE_MAT``
byte-identity contract (same results, same virtual costs, either way)."""

import numpy as np

from repro import obs
from repro.common import knobs
from repro.engine.configuration import primary_configuration
from repro.executor.batch import Batch
from repro.executor.engine import Executor
from repro.executor.kernels import (
    KernelCache,
    LATEMAT_ENV,
    ScratchArena,
    late_mat_enabled,
)
from repro.optimizer.plans import ScanFilter


def make_lazy_batch(n=10):
    return Batch(
        columns={
            "t.a": np.arange(n, dtype=np.int64),
            "t.b": np.arange(n, dtype=np.int64) * 10,
        },
        widths={"t.a": 8, "t.b": 8},
        lazy=True,
        length=n,
    )


def test_knob_registered_and_default_on(monkeypatch):
    assert knobs.is_registered(LATEMAT_ENV)
    monkeypatch.delenv(LATEMAT_ENV, raising=False)
    assert late_mat_enabled()
    monkeypatch.setenv(LATEMAT_ENV, "0")
    assert not late_mat_enabled()


# ----------------------------------------------------------------------
# Selection-vector batches

def test_lazy_mask_defers_gather():
    batch = make_lazy_batch(10)
    base_a = batch.columns["t.a"]
    keep = np.array([True, False] * 5)
    masked = batch.mask(keep)
    # The payload array is untouched: same base object, sel pending.
    assert masked.columns["t.a"] is base_a
    assert masked.selected("t.a") and masked.selected("t.b")
    assert masked.rows == 5
    # Reading the column gathers — and only then drops the sel.
    assert masked.column("t.a").tolist() == [0, 2, 4, 6, 8]
    assert not masked.selected("t.a")
    assert masked.selected("t.b")


def test_sel_composition_mask_then_take():
    batch = make_lazy_batch(10)
    masked = batch.mask(np.array([True, False] * 5))   # rows 0,2,4,6,8
    taken = masked.take(np.array([4, 4, 0]))           # rows 8,8,0
    assert taken.rows == 3
    assert taken.columns["t.a"] is batch.columns["t.a"]
    assert taken.column("t.a").tolist() == [8, 8, 0]
    assert taken.column("t.b").tolist() == [80, 80, 0]


def test_column_gather_is_memoized():
    batch = make_lazy_batch(8).mask(np.arange(8) % 2 == 0)
    first = batch.column("t.a")
    second = batch.column("t.a")
    assert first is second


def test_codes_gather_in_lockstep_with_values():
    batch = make_lazy_batch(8)
    batch.codes["t.a"] = np.arange(8, dtype=np.int64) + 100
    masked = batch.mask(np.arange(8) % 2 == 0)
    # Before any read the carried codes are still the base array.
    assert masked.codes["t.a"][0] == 100 and len(masked.codes["t.a"]) == 8
    masked.column("t.a")
    assert masked.codes["t.a"].tolist() == [100, 102, 104, 106]


def test_gather_counters_emitted():
    batch = make_lazy_batch(10)
    with obs.recording() as recorder:
        batch.mask(np.array([True] * 4 + [False] * 6))
    counters = recorder.metrics.snapshot().get("counters", {})
    assert counters.get("executor.gathers_deferred") == 2
    # 4 surviving rows x 8 bytes x 2 deferred columns.
    assert counters.get("executor.gather_bytes_avoided") == 64


def test_materialize_gathers_everything():
    batch = make_lazy_batch(6).mask(np.arange(6) < 3)
    out = batch.materialize()
    assert out is batch and not out.lazy and not out.sels
    assert out.columns["t.a"].tolist() == [0, 1, 2]


def test_row_width_counts_all_plan_columns():
    """Pruned/unread columns still contribute to ``row_width`` — the
    cost model must see the representation-independent tuple width."""
    batch = Batch(
        columns={"t.a": np.arange(4, dtype=np.int64)},
        widths={"t.a": 8, "t.unattached": 24},
        lazy=True,
        length=4,
    )
    assert batch.row_width == 8 + 24 + 8  # + weight slot


# ----------------------------------------------------------------------
# Shared-ones weights (the weight_array allocation fix)

def test_weight_array_shared_ones_regression():
    a, b = make_lazy_batch(32), make_lazy_batch(32)
    with obs.recording() as recorder:
        first = a.weight_array()
        second = b.weight_array()
    assert first.tolist() == [1.0] * 32
    # Same pooled buffer, handed out read-only — not a fresh np.ones
    # per call (the counter would grow once per batch otherwise).
    assert np.shares_memory(first, second)
    assert not first.flags.writeable
    counters = recorder.metrics.snapshot().get("counters", {})
    assert counters.get("executor.ones_allocations", 0) <= 1


def test_weight_array_copies_explicit_weights():
    batch = make_lazy_batch(4)
    batch.weights = np.array([2.0, 3.0, 4.0, 5.0])
    out = batch.weight_array()
    assert out.tolist() == [2.0, 3.0, 4.0, 5.0]
    assert out is not batch.weights and out.flags.writeable


# ----------------------------------------------------------------------
# Fused predicate kernels

def test_fused_kernel_reused_across_literals():
    cache = KernelCache()
    shape_a = [ScanFilter("t.a", "a", ">", 2), ScanFilter("t.b", "b", "<=", 60)]
    shape_b = [ScanFilter("t.a", "a", ">", 5), ScanFilter("t.b", "b", "<=", 90)]
    with obs.recording() as recorder:
        k1 = cache.fused_filter("t", shape_a)
        k2 = cache.fused_filter("t", shape_b)
    # Same (table, filter-structure) key: literals bind at call time.
    assert k1 is k2
    counters = recorder.metrics.snapshot().get("counters", {})
    assert counters.get("executor.kernel_builds") == 1
    assert counters.get("executor.kernel_hits") == 1

    a = np.arange(10, dtype=np.int64)
    b = a * 10
    keep = k1([a, b], [2, 60], 0, 10)
    assert keep.tolist() == ((a > 2) & (b <= 60)).tolist()
    keep = k1([a, b], [5, 90], 3, 10)
    assert keep.tolist() == ((a[3:] > 5) & (b[3:] <= 90)).tolist()


def test_fused_kernel_distinct_structure_compiles_again():
    cache = KernelCache()
    cache.fused_filter("t", [ScanFilter("t.a", "a", "=", 1)])
    cache.fused_filter("t", [ScanFilter("t.a", "a", "<", 1)])
    cache.fused_filter("u", [ScanFilter("u.a", "a", "=", 1)])
    snapshot = cache.stats.snapshot()
    assert snapshot["misses"] == 3 and snapshot["hits"] == 0


def test_kernel_cache_invalidate():
    cache = KernelCache()
    filters = [ScanFilter("t.a", "a", "=", 1)]
    cache.fused_filter("t", filters)
    cache.invalidate()
    cache.fused_filter("t", filters)
    assert cache.stats.snapshot()["misses"] == 2


def test_scratch_arena_reuses_buffers():
    arena = ScratchArena()
    with obs.recording() as recorder:
        first = arena.bools(100, fill=True)
        assert first.all() and len(first) == 100
        second = arena.bools(40, fill=False)
        assert not second.any() and len(second) == 40
        ints = arena.ints(50, fill=0)
        assert not ints.any() and len(ints) == 50
    counters = recorder.metrics.snapshot().get("counters", {})
    # Second bools() request fits the grown buffer: reuse, not alloc.
    assert counters.get("executor.arena_allocations") == 2
    assert counters.get("executor.arena_reuses") == 1


# ----------------------------------------------------------------------
# Identity fast-path routing (_identity_specs edge cases)

def make_executor(db):
    return Executor(db.tables, db.system.hardware, late=True)


def base_batch(table, alias, columns, lazy=False):
    return Batch(
        columns={f"{alias}.{c}": table.column(c) for c in columns},
        widths={f"{alias}.{c}": 8 for c in columns},
        lazy=lazy,
        length=table.row_count if lazy else None,
    )


def test_identity_specs_full_base_batch(city_db):
    executor = make_executor(city_db)
    users = city_db.table("users")
    batch = base_batch(users, "u", ["age", "city"])
    filters = [ScanFilter("u.age", "age", "=", 30)]
    specs = executor._identity_specs(batch, filters, users, "u")
    assert specs == [("age", "=", 30)]


def test_identity_specs_rejects_masked_batch(city_db):
    executor = make_executor(city_db)
    users = city_db.table("users")
    batch = base_batch(users, "u", ["age"])
    masked = batch.mask(np.zeros(batch.rows, dtype=bool) | True)
    # Even an all-true eager mask copies the arrays: identity is gone.
    filters = [ScanFilter("u.age", "age", "=", 30)]
    assert executor._identity_specs(masked, filters, users, "u") is None


def test_identity_specs_rejects_pending_selection(city_db):
    executor = make_executor(city_db)
    users = city_db.table("users")
    batch = base_batch(users, "u", ["age"], lazy=True)
    masked = batch.mask(np.ones(batch.rows, dtype=bool))
    # The base array is still attached, but a sel is pending: the
    # batch no longer stands for the full table.
    assert masked.columns["u.age"] is users.column("age")
    filters = [ScanFilter("u.age", "age", "=", 30)]
    assert executor._identity_specs(masked, filters, users, "u") is None


def test_identity_specs_rejects_computed_column(city_db):
    executor = make_executor(city_db)
    users = city_db.table("users")
    batch = base_batch(users, "u", ["age"])
    # A renamed/computed/view-backed column: equal values, different
    # array — never the table's storage, so no shard/subplan shortcut.
    batch.columns["u.age"] = users.column("age").copy()
    filters = [ScanFilter("u.age", "age", "=", 30)]
    assert executor._identity_specs(batch, filters, users, "u") is None


def test_identity_specs_rejects_foreign_alias(city_db):
    executor = make_executor(city_db)
    users = city_db.table("users")
    batch = base_batch(users, "u", ["age"])
    batch.columns["o.uid"] = users.column("uid")
    filters = [
        ScanFilter("u.age", "age", "=", 30),
        ScanFilter("o.uid", "uid", "=", 5),
    ]
    assert executor._identity_specs(batch, filters, users, "u") is None


# ----------------------------------------------------------------------
# End-to-end: the knob changes the representation, never the answer

IDENTITY_SQLS = (
    "SELECT u.city, COUNT(*) FROM users u WHERE u.age = 30 GROUP BY u.city",
    "SELECT u.city, COUNT(*) FROM users u, orders o "
    "WHERE u.uid = o.uid AND u.age = 30 GROUP BY u.city",
    "SELECT o.amount, COUNT(*) FROM orders o WHERE o.oid = 5 "
    "GROUP BY o.amount",
    "SELECT u.city, COUNT(DISTINCT u.age) FROM users u GROUP BY u.city",
)


def run_all(db):
    out = []
    for sql in IDENTITY_SQLS:
        result = db.execute(sql)
        out.append((sorted(result.rows()), result.elapsed))
    return out


def test_database_identical_with_knob_off(city_db, monkeypatch):
    city_db.apply_configuration(primary_configuration(city_db.catalog))
    monkeypatch.delenv(LATEMAT_ENV, raising=False)
    late = run_all(city_db)
    city_db.invalidate_caches()
    monkeypatch.setenv(LATEMAT_ENV, "0")
    eager = run_all(city_db)
    # Same rows AND the same virtual-clock costs: the knob swaps the
    # physical representation only.
    assert late == eager


def test_columns_pruned_on_index_scan(city_db, monkeypatch):
    city_db.apply_configuration(primary_configuration(city_db.catalog))
    monkeypatch.delenv(LATEMAT_ENV, raising=False)
    sql = (
        "SELECT o.amount, COUNT(*) FROM orders o WHERE o.oid = 5 "
        "GROUP BY o.amount"
    )
    with obs.recording() as recorder:
        result = city_db.execute(sql)
    counters = recorder.metrics.snapshot().get("counters", {})
    # The oid prefix key is resolved by the index descend; the scan
    # never needs the column and the pruning pass drops it.
    assert counters.get("executor.columns_pruned", 0) >= 1
    assert sorted(result.rows()) == [
        (amount, 1) for amount in sorted(
            a for a, o in zip(
                city_db.table("orders").column("amount"),
                city_db.table("orders").column("oid"),
            ) if o == 5
        )
    ]


def test_deferred_gathers_on_filter_query(city_db, monkeypatch):
    city_db.apply_configuration(primary_configuration(city_db.catalog))
    monkeypatch.delenv(LATEMAT_ENV, raising=False)
    with obs.recording() as recorder:
        city_db.execute(IDENTITY_SQLS[0])
    counters = recorder.metrics.snapshot().get("counters", {})
    assert counters.get("executor.gathers_deferred", 0) > 0
    assert counters.get("executor.gather_bytes_avoided", 0) > 0
    assert counters.get("executor.kernel_builds", 0) \
        + counters.get("executor.kernel_hits", 0) > 0
