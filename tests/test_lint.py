"""The invariant checker: rules, suppressions, baselines, CLI, and the
acceptance demonstrations (a dropped ``invalidate_caches`` call or a raw
``random.random()`` under ``engine/`` must fail the lint run)."""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.lint import (
    ALL_RULES,
    LINT_REPORT_SCHEMA,
    LINT_REPORT_SCHEMA_ID,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.__main__ import main as lint_main
from repro.obs.schemas import validate_instance
from repro.obs.validate import main as validate_main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def lint(path, *rules, baseline=None):
    return run_lint(
        [str(path)],
        rules=list(rules) or None,
        baseline_path=baseline,
        root=str(REPO_ROOT),
    )


# ----------------------------------------------------------------------
# Per-rule fixtures: every positive file fires, every negative is clean.


def test_rng_rule_positive():
    result = lint(FIXTURES / "rng_bad.py", "RNG001")
    assert len(result.findings) == 4
    assert all(f.rule == "RNG001" for f in result.findings)
    assert all("repro.common.rng" in f.message for f in result.findings)


def test_rng_rule_negative():
    assert lint(FIXTURES / "rng_good.py", "RNG001").ok


def test_clock_rule_positive():
    result = lint(FIXTURES / "clock_bad.py", "CLK001")
    assert len(result.findings) == 4
    assert all(f.rule == "CLK001" for f in result.findings)
    flagged = " ".join(f.message for f in result.findings)
    assert "time.perf_counter" in flagged
    assert "datetime.datetime.now" in flagged


def test_clock_rule_negative():
    assert lint(FIXTURES / "clock_good.py", "CLK001").ok


def test_invalidation_rule_positive():
    result = lint(FIXTURES / "invalidation_bad.py", "INV001")
    messages = [f.message for f in result.findings]
    assert len(messages) == 5
    assert any("MiniDatabase.load_table" in m for m in messages)
    assert any("MiniDatabase.insert" in m for m in messages)
    assert any("DictEncodedDatabase.append" in m for m in messages)
    assert any("ShardedDatabase.load_partition" in m for m in messages)
    assert any("TemplatedDatabase.append" in m for m in messages)


def test_invalidation_rule_negative():
    assert lint(FIXTURES / "invalidation_good.py", "INV001").ok


def test_lock_rule_positive():
    result = lint(FIXTURES / "locks_bad.py", "LCK001")
    messages = [f.message for f in result.findings]
    assert len(messages) == 5
    assert any("self.hits" in m for m in messages)
    assert any("self.total" in m for m in messages)
    assert any("self.bytes_shared" in m for m in messages)
    assert any("self.completed" in m for m in messages)
    assert any("self.morsels_done" in m for m in messages)


def test_lock_rule_negative():
    assert lint(FIXTURES / "locks_good.py", "LCK001").ok


def test_exception_rule_positive():
    result = lint(FIXTURES / "exceptions_bad.py", "EXC001")
    assert len(result.findings) == 3
    assert "bare 'except:'" in result.findings[0].message
    assert all("raise" in f.message for f in result.findings[1:])


def test_exception_rule_negative():
    assert lint(FIXTURES / "exceptions_good.py", "EXC001").ok


def test_schema_sync_rule_positive():
    result = lint(FIXTURES / "schema_bad", "SCH001")
    rendered = [f.render() for f in result.findings]
    assert len(rendered) == 3
    assert any("report.py" in r and "$.extra" in r for r in rendered)
    assert any("report.py" in r and "$.stages" in r for r in rendered)
    assert any("schemas.py" in r and "$.run.scale" in r for r in rendered)


def test_schema_sync_rule_negative():
    assert lint(FIXTURES / "schema_good", "SCH001").ok


def test_path_exemptions_in_tree():
    result = lint(FIXTURES / "tree", "RNG001", "CLK001")
    assert len(result.findings) == 2
    assert all(f.path.endswith("leak.py") for f in result.findings)
    assert {f.rule for f in result.findings} == {"RNG001", "CLK001"}


# ----------------------------------------------------------------------
# Suppressions, baselines, parse errors, result shape.


def test_suppression_comments_silence_findings():
    result = lint(FIXTURES / "suppressed.py", "RNG001", "CLK001")
    assert result.ok
    assert result.suppressed == 2


def test_baseline_round_trip(tmp_path):
    baseline = tmp_path / "baseline.json"
    before = lint(FIXTURES / "rng_bad.py", "RNG001")
    assert write_baseline(before.findings, baseline) == 4
    after = lint(FIXTURES / "rng_bad.py", "RNG001", baseline=str(baseline))
    assert after.ok
    assert after.baselined == 4
    assert after.stale_baseline_entries == 0


def test_baseline_reports_stale_entries(tmp_path):
    baseline = tmp_path / "baseline.json"
    write_baseline(lint(FIXTURES / "rng_bad.py", "RNG001").findings, baseline)
    clean = lint(FIXTURES / "rng_good.py", "RNG001", baseline=str(baseline))
    assert clean.ok
    assert clean.baselined == 0
    assert clean.stale_baseline_entries == 4


def test_baseline_survives_json_reload(tmp_path):
    baseline = tmp_path / "baseline.json"
    write_baseline(lint(FIXTURES / "rng_bad.py", "RNG001").findings, baseline)
    keys = load_baseline(baseline)
    assert sum(keys.values()) == 4
    assert all(rule == "RNG001" for rule, _, _ in keys)


def test_parse_error_is_a_finding_and_not_suppressible(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("# repro-lint: disable-file=all\ndef broken(:\n")
    result = lint(broken)
    assert len(result.findings) == 1
    assert result.findings[0].rule == "PARSE"
    assert not result.ok


def test_findings_are_sorted():
    result = lint(
        FIXTURES, "RNG001", "CLK001", "INV001", "LCK001", "EXC001"
    )
    assert result.findings == sorted(result.findings)
    assert not result.ok


# ----------------------------------------------------------------------
# The CLI: formats and exit codes.


def test_cli_exit_one_and_text_summary(capsys):
    code = lint_main([str(FIXTURES / "rng_bad.py"), "--rule", "RNG001"])
    assert code == 1
    out = capsys.readouterr().out
    assert "RNG001" in out
    assert "4 finding(s) in 1 file(s)" in out


def test_cli_exit_zero_on_clean_file(capsys):
    assert lint_main([str(FIXTURES / "rng_good.py")]) == 0
    assert "0 finding(s) in 1 file(s)" in capsys.readouterr().out


def test_cli_json_output_matches_schema(capsys):
    code = lint_main([
        str(FIXTURES / "rng_bad.py"), "--rule", "RNG001",
        "--format", "json",
    ])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    validate_instance(document, LINT_REPORT_SCHEMA)
    assert document["schema"] == LINT_REPORT_SCHEMA_ID
    assert document["summary"]["findings"] == 4
    assert len(document["findings"]) == 4
    assert document["findings"][0]["rule"] == "RNG001"


def test_cli_unknown_rule_exits_two(capsys):
    assert lint_main([str(FIXTURES / "rng_good.py"), "--rule", "NOPE"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_malformed_baseline_exits_two(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("not json")
    code = lint_main([
        str(FIXTURES / "rng_good.py"), "--baseline", str(bad)
    ])
    assert code == 2
    assert "lint failed" in capsys.readouterr().err


def test_cli_write_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = lint_main([
        str(FIXTURES / "rng_bad.py"), "--rule", "RNG001",
        "--write-baseline", str(baseline),
    ])
    assert code == 0
    assert sum(load_baseline(baseline).values()) == 4


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ALL_RULES:
        assert name in out


# ----------------------------------------------------------------------
# Acceptance: src is clean, and the two seeded regressions are caught.


def test_module_run_on_src_is_clean():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "--format", "json"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    document = json.loads(proc.stdout)
    assert document["summary"]["findings"] == 0


def test_dropping_an_invalidation_call_fails_lint(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", tree)
    database = tree / "engine" / "database.py"
    source = database.read_text()
    assert "self.invalidate_caches()" in source
    database.write_text(
        source.replace("self.invalidate_caches()", "pass", 1)
    )
    result = run_lint([str(tree)], root=str(tmp_path))
    assert not result.ok
    assert {f.rule for f in result.findings} == {"INV001"}
    assert any("invalidate_caches" in f.message for f in result.findings)


def test_raw_random_under_engine_fails_lint(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", tree)
    sneaky = tree / "engine" / "sneaky.py"
    sneaky.write_text("import random\n\nvalue = random.random()\n")
    result = run_lint([str(tree)], root=str(tmp_path))
    assert not result.ok
    assert {f.rule for f in result.findings} == {"RNG001"}
    assert all(f.path.endswith("engine/sneaky.py")
               for f in result.findings)


# ----------------------------------------------------------------------
# repro.obs.validate exit codes: schema violation vs unreadable input.


def test_validate_exit_zero_on_valid_trace(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    trace.write_text("")
    assert validate_main(["--trace", str(trace)]) == 0
    assert "trace OK" in capsys.readouterr().out


def test_validate_exit_one_on_schema_violation(tmp_path, capsys):
    report = tmp_path / "report.json"
    report.write_text("{}")
    assert validate_main(["--report", str(report)]) == 1
    assert "validation FAILED" in capsys.readouterr().err


def test_validate_exit_one_on_undecodable_json(tmp_path, capsys):
    report = tmp_path / "report.json"
    report.write_text("{ not json")
    assert validate_main(["--report", str(report)]) == 1
    assert "not valid JSON" in capsys.readouterr().err


def test_validate_exit_two_on_unreadable_input(tmp_path, capsys):
    missing = tmp_path / "does-not-exist.json"
    assert validate_main(["--report", str(missing)]) == 2
    assert "cannot read input" in capsys.readouterr().err
