"""The invariant checker: rules, suppressions, baselines, CLI, and the
acceptance demonstrations (a dropped ``invalidate_caches`` call or a raw
``random.random()`` under ``engine/`` must fail the lint run)."""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.lint import (
    ALL_RULES,
    LINT_REPORT_SCHEMA,
    LINT_REPORT_SCHEMA_ID,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.__main__ import main as lint_main
from repro.obs.schemas import validate_instance
from repro.obs.validate import main as validate_main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def lint(path, *rules, baseline=None):
    return run_lint(
        [str(path)],
        rules=list(rules) or None,
        baseline_path=baseline,
        root=str(REPO_ROOT),
    )


# ----------------------------------------------------------------------
# Per-rule fixtures: every positive file fires, every negative is clean.


def test_rng_rule_positive():
    result = lint(FIXTURES / "rng_bad.py", "RNG001")
    assert len(result.findings) == 4
    assert all(f.rule == "RNG001" for f in result.findings)
    assert all("repro.common.rng" in f.message for f in result.findings)


def test_rng_rule_negative():
    assert lint(FIXTURES / "rng_good.py", "RNG001").ok


def test_clock_rule_positive():
    result = lint(FIXTURES / "clock_bad.py", "CLK001")
    assert len(result.findings) == 4
    assert all(f.rule == "CLK001" for f in result.findings)
    flagged = " ".join(f.message for f in result.findings)
    assert "time.perf_counter" in flagged
    assert "datetime.datetime.now" in flagged


def test_clock_rule_negative():
    assert lint(FIXTURES / "clock_good.py", "CLK001").ok


def test_invalidation_rule_positive():
    result = lint(FIXTURES / "invalidation_bad.py", "INV001")
    messages = [f.message for f in result.findings]
    assert len(messages) == 6
    assert any("MiniDatabase.load_table" in m for m in messages)
    assert any("MiniDatabase.insert" in m for m in messages)
    assert any("DictEncodedDatabase.append" in m for m in messages)
    assert any("ShardedDatabase.load_partition" in m for m in messages)
    assert any("TemplatedDatabase.append" in m for m in messages)
    assert any("KernelDatabase.append" in m for m in messages)


def test_invalidation_rule_negative():
    assert lint(FIXTURES / "invalidation_good.py", "INV001").ok


def test_lock_rule_positive():
    result = lint(FIXTURES / "locks_bad.py", "LCK001")
    messages = [f.message for f in result.findings]
    assert len(messages) == 6
    assert any("self.hits" in m for m in messages)
    assert any("self.total" in m for m in messages)
    assert any("self.bytes_shared" in m for m in messages)
    assert any("self.completed" in m for m in messages)
    assert any("self.morsels_done" in m for m in messages)
    assert any("self.hit_count" in m for m in messages)


def test_lock_rule_negative():
    assert lint(FIXTURES / "locks_good.py", "LCK001").ok


def test_exception_rule_positive():
    result = lint(FIXTURES / "exceptions_bad.py", "EXC001")
    assert len(result.findings) == 3
    assert "bare 'except:'" in result.findings[0].message
    assert all("raise" in f.message for f in result.findings[1:])


def test_exception_rule_negative():
    assert lint(FIXTURES / "exceptions_good.py", "EXC001").ok


def test_schema_sync_rule_positive():
    result = lint(FIXTURES / "schema_bad", "SCH001")
    rendered = [f.render() for f in result.findings]
    assert len(rendered) == 3
    assert any("report.py" in r and "$.extra" in r for r in rendered)
    assert any("report.py" in r and "$.stages" in r for r in rendered)
    assert any("schemas.py" in r and "$.run.scale" in r for r in rendered)


def test_schema_sync_rule_negative():
    assert lint(FIXTURES / "schema_good", "SCH001").ok


def test_race_rule_positive():
    result = lint(FIXTURES / "races_bad.py", "LCK002")
    messages = [f.message for f in result.findings]
    assert len(messages) == 4
    # Direct unguarded write in a submitted method.
    assert any("'self.hits' in Tally.record " in m for m in messages)
    # One branch locked, one not: the intersection is empty.
    assert any("Tally.record_some" in m for m in messages)
    # Helper escape: an unlocked caller drains the entry lockset.
    assert any("'self.errors' in Tally._bump_errors" in m
               for m in messages)
    # Arena-style scratch pool: its own lock exists but is never taken.
    assert any("'self.reuses' in Arena.borrow" in m for m in messages)


def test_race_rule_negative():
    assert lint(FIXTURES / "races_good.py", "LCK002").ok


def test_taint_rule_positive():
    result = lint(FIXTURES / "taint_bad.py", "TNT001")
    messages = [f.message for f in result.findings]
    assert len(messages) == 5
    assert sum("artifact_key()" in m for m in messages) == 2
    assert any("fingerprint()" in m for m in messages)
    # Interprocedural: perf_seconds() through a helper's return value
    # into a cache put key.
    assert any("self.cache.put() key" in m for m in messages)
    # Unordered iteration into a report field.
    assert any("order taint" in m and "report" in m for m in messages)


def test_taint_rule_negative():
    assert lint(FIXTURES / "taint_good.py", "TNT001").ok


def test_knob_rule_unregistered_mode():
    tree = FIXTURES / "knobs_unregistered"
    result = run_lint([str(tree / "repro")], rules=["KNB001"],
                      root=str(tree))
    assert [f.rule for f in result.findings] == ["KNB001"]
    assert "REPRO_FIX_BETA is not registered" in result.findings[0].message


def test_knob_rule_undocumented_mode():
    tree = FIXTURES / "knobs_undocumented"
    result = run_lint([str(tree / "repro")], rules=["KNB001"],
                      root=str(tree))
    assert [f.rule for f in result.findings] == ["KNB001"]
    assert "REPRO_FIX_BETA is not documented" in result.findings[0].message


def test_knob_rule_untested_mode():
    tree = FIXTURES / "knobs_untested"
    result = run_lint([str(tree / "repro")], rules=["KNB001"],
                      root=str(tree))
    assert [f.rule for f in result.findings] == ["KNB001"]
    assert "REPRO_FIX_BETA is not named in any test" in \
        result.findings[0].message


def test_path_exemptions_in_tree():
    result = lint(FIXTURES / "tree", "RNG001", "CLK001")
    assert len(result.findings) == 2
    assert all(f.path.endswith("leak.py") for f in result.findings)
    assert {f.rule for f in result.findings} == {"RNG001", "CLK001"}


# ----------------------------------------------------------------------
# Suppressions, baselines, parse errors, result shape.


def test_suppression_comments_silence_findings():
    result = lint(FIXTURES / "suppressed.py", "RNG001", "CLK001")
    assert result.ok
    assert result.suppressed == 2


def test_suppression_spans_cover_decorators_and_multiline_statements():
    result = lint(FIXTURES / "suppressed_spans.py", "CLK001")
    assert result.ok
    # One finding inside the decorated body, two inside the multi-line
    # list — all covered by directives on the first physical line.
    assert result.suppressed == 3


def test_baseline_round_trip(tmp_path):
    baseline = tmp_path / "baseline.json"
    before = lint(FIXTURES / "rng_bad.py", "RNG001")
    assert write_baseline(before.findings, baseline) == 4
    after = lint(FIXTURES / "rng_bad.py", "RNG001", baseline=str(baseline))
    assert after.ok
    assert after.baselined == 4
    assert after.stale_baseline_entries == 0


def test_baseline_reports_stale_entries(tmp_path):
    baseline = tmp_path / "baseline.json"
    write_baseline(lint(FIXTURES / "rng_bad.py", "RNG001").findings, baseline)
    clean = lint(FIXTURES / "rng_good.py", "RNG001", baseline=str(baseline))
    assert clean.ok
    assert clean.baselined == 0
    assert clean.stale_baseline_entries == 4


def test_baseline_survives_json_reload(tmp_path):
    baseline = tmp_path / "baseline.json"
    write_baseline(lint(FIXTURES / "rng_bad.py", "RNG001").findings, baseline)
    keys = load_baseline(baseline)
    assert sum(keys.values()) == 4
    assert all(rule == "RNG001" for rule, _, _ in keys)


def test_parse_error_is_a_finding_and_not_suppressible(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("# repro-lint: disable-file=all\ndef broken(:\n")
    result = lint(broken)
    assert len(result.findings) == 1
    assert result.findings[0].rule == "PARSE"
    assert not result.ok


def test_findings_are_sorted():
    result = lint(
        FIXTURES, "RNG001", "CLK001", "INV001", "LCK001", "EXC001"
    )
    assert result.findings == sorted(result.findings)
    assert not result.ok


# ----------------------------------------------------------------------
# The CLI: formats and exit codes.


def test_cli_exit_one_and_text_summary(capsys):
    code = lint_main([str(FIXTURES / "rng_bad.py"), "--rule", "RNG001"])
    assert code == 1
    out = capsys.readouterr().out
    assert "RNG001" in out
    assert "4 finding(s) in 1 file(s)" in out


def test_cli_exit_zero_on_clean_file(capsys):
    assert lint_main([str(FIXTURES / "rng_good.py")]) == 0
    assert "0 finding(s) in 1 file(s)" in capsys.readouterr().out


def test_cli_json_output_matches_schema(capsys):
    code = lint_main([
        str(FIXTURES / "rng_bad.py"), "--rule", "RNG001",
        "--format", "json",
    ])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    validate_instance(document, LINT_REPORT_SCHEMA)
    assert document["schema"] == LINT_REPORT_SCHEMA_ID
    assert document["summary"]["findings"] == 4
    assert len(document["findings"]) == 4
    assert document["findings"][0]["rule"] == "RNG001"


def test_cli_sarif_output(capsys):
    code = lint_main([
        str(FIXTURES / "rng_bad.py"), "--rule", "RNG001",
        "--format", "sarif",
    ])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert "sarif-2.1.0" in document["$schema"]
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert rule_ids == {"RNG001"}
    assert len(run["results"]) == 4
    for entry in run["results"]:
        assert entry["ruleId"] == "RNG001"
        assert entry["level"] == "error"
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("rng_bad.py")
        assert location["region"]["startLine"] >= 1


def test_cli_unknown_rule_exits_two(capsys):
    assert lint_main([str(FIXTURES / "rng_good.py"), "--rule", "NOPE"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_malformed_baseline_exits_two(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("not json")
    code = lint_main([
        str(FIXTURES / "rng_good.py"), "--baseline", str(bad)
    ])
    assert code == 2
    assert "lint failed" in capsys.readouterr().err


def test_cli_write_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = lint_main([
        str(FIXTURES / "rng_bad.py"), "--rule", "RNG001",
        "--write-baseline", str(baseline),
    ])
    assert code == 0
    assert sum(load_baseline(baseline).values()) == 4


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ALL_RULES:
        assert name in out


# ----------------------------------------------------------------------
# Parallel runs: any --jobs value produces byte-identical output, and
# --timings surfaces the phase breakdown without changing findings.


FILE_RULES = ["RNG001", "CLK001", "INV001", "LCK001", "EXC001"]


def fixture_files():
    return sorted(str(p) for p in FIXTURES.glob("*.py"))


def test_parallel_findings_are_byte_identical():
    serial = run_lint(fixture_files(), rules=FILE_RULES,
                      root=str(REPO_ROOT), jobs=1)
    parallel = run_lint(fixture_files(), rules=FILE_RULES,
                        root=str(REPO_ROOT), jobs=4)
    assert json.dumps(serial.to_json(), sort_keys=True) == \
        json.dumps(parallel.to_json(), sort_keys=True)
    assert not serial.ok


def test_timings_are_reported_and_schema_valid():
    result = run_lint([str(FIXTURES / "rng_bad.py")], rules=["RNG001"],
                      root=str(REPO_ROOT), jobs=2, timings=True)
    assert result.timings is not None
    assert result.timings["jobs"] == 1  # clamped to the file count
    assert result.timings["total_s"] >= 0.0
    document = result.to_json()
    validate_instance(document, LINT_REPORT_SCHEMA)
    assert "timings" in document


def test_timings_do_not_change_findings():
    plain = run_lint(fixture_files(), rules=FILE_RULES,
                     root=str(REPO_ROOT))
    timed = run_lint(fixture_files(), rules=FILE_RULES,
                     root=str(REPO_ROOT), timings=True)
    assert [f.render() for f in plain.findings] == \
        [f.render() for f in timed.findings]


def test_cli_timings_footer(capsys):
    code = lint_main([
        str(FIXTURES / "rng_good.py"), "--rule", "RNG001", "--timings",
    ])
    assert code == 0
    assert "timing: total" in capsys.readouterr().out


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is in the image
    given = None

if given is not None:
    _REFERENCE = {}

    def reference_findings():
        if "findings" not in _REFERENCE:
            result = run_lint(fixture_files(), rules=FILE_RULES,
                              root=str(REPO_ROOT), jobs=1)
            _REFERENCE["findings"] = [f.render() for f in result.findings]
        return _REFERENCE["findings"]

    @settings(max_examples=10, deadline=None)
    @given(files=st.permutations(fixture_files()), jobs=st.integers(1, 8))
    def test_findings_independent_of_discovery_order_and_jobs(files, jobs):
        result = run_lint(list(files), rules=FILE_RULES,
                          root=str(REPO_ROOT), jobs=jobs)
        assert [f.render() for f in result.findings] == \
            reference_findings()


# ----------------------------------------------------------------------
# Acceptance: src is clean, and the two seeded regressions are caught.


def test_module_run_on_src_is_clean():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "--format", "json"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    document = json.loads(proc.stdout)
    assert document["summary"]["findings"] == 0


def test_dropping_an_invalidation_call_fails_lint(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", tree)
    database = tree / "engine" / "database.py"
    source = database.read_text()
    assert "self.invalidate_caches()" in source
    database.write_text(
        source.replace("self.invalidate_caches()", "pass", 1)
    )
    result = run_lint([str(tree)], root=str(tmp_path))
    assert not result.ok
    assert {f.rule for f in result.findings} == {"INV001"}
    assert any("invalidate_caches" in f.message for f in result.findings)


def test_raw_random_under_engine_fails_lint(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", tree)
    sneaky = tree / "engine" / "sneaky.py"
    sneaky.write_text("import random\n\nvalue = random.random()\n")
    result = run_lint([str(tree)], root=str(tmp_path))
    assert not result.ok
    assert {f.rule for f in result.findings} == {"RNG001"}
    assert all(f.path.endswith("engine/sneaky.py")
               for f in result.findings)


def test_removing_a_lock_acquire_fails_lint(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", tree)
    sessions = tree / "server" / "sessions.py"
    source = sessions.read_text()
    locked = (
        "        now = self._clock()\n"
        "        with self._lock:\n"
        "            self._sweep_locked(now)\n"
        "            session = self._sessions.get(session_id)\n"
        "            if session is None:\n"
        "                raise UnknownSessionError(session_id)\n"
        "            session.last_used = now\n"
        "            self._sessions.move_to_end(session_id)\n"
        "            return session\n"
    )
    assert locked in source
    unlocked = (
        "        now = self._clock()\n"
        "        self._sweep_locked(now)\n"
        "        session = self._sessions.get(session_id)\n"
        "        if session is None:\n"
        "            raise UnknownSessionError(session_id)\n"
        "        session.last_used = now\n"
        "        self._sessions.move_to_end(session_id)\n"
        "        return session\n"
    )
    sessions.write_text(source.replace(locked, unlocked))
    result = run_lint([str(tree)], root=str(tmp_path))
    assert not result.ok
    assert {f.rule for f in result.findings} == {"LCK002"}
    messages = [f.message for f in result.findings]
    # The direct write in the now-unlocked method, plus the helper it
    # calls: _sweep_locked loses its all-callers-hold-the-lock credit.
    assert any("'session.last_used' in SessionStore.get" in m
               for m in messages)
    assert any("SessionStore._sweep_locked" in m for m in messages)


def test_clock_flow_into_cache_key_fails_lint(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", tree)
    context = tree / "bench" / "context.py"
    source = context.read_text()
    pure = (
        "    def _key(self, *parts):\n"
        "        return artifact_key(*self.settings.content_key(), "
        "*parts)\n"
    )
    assert pure in source
    stamped = (
        "    def _key(self, *parts):\n"
        "        stamp = obs.perf_seconds()\n"
        "        return artifact_key(stamp, "
        "*self.settings.content_key(), *parts)\n"
    )
    context.write_text(source.replace(pure, stamped))
    result = run_lint([str(tree)], root=str(tmp_path))
    assert not result.ok
    assert {f.rule for f in result.findings} == {"TNT001"}
    # The tainted key spreads interprocedurally to every cache call
    # that consumes _key's return value.
    assert any("artifact_key()" in f.message for f in result.findings)
    assert any("get_or_build() key" in f.message
               for f in result.findings)


def test_unregistered_knob_read_fails_lint(tmp_path):
    tree = tmp_path / "repro"
    shutil.copytree(REPO_ROOT / "src" / "repro", tree)
    sneaky = tree / "engine" / "sneaky_knob.py"
    sneaky.write_text(
        "import os\n\nTURBO = os.environ.get(\"REPRO_TURBO\", \"\")\n"
    )
    result = run_lint([str(tree)], root=str(tmp_path))
    assert not result.ok
    assert {f.rule for f in result.findings} == {"KNB001"}
    messages = [f.message for f in result.findings]
    assert any("REPRO_TURBO is read directly from os.environ" in m
               for m in messages)
    assert any("REPRO_TURBO is not registered" in m for m in messages)


# ----------------------------------------------------------------------
# repro.obs.validate exit codes: schema violation vs unreadable input.


def test_validate_exit_zero_on_valid_trace(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    trace.write_text("")
    assert validate_main(["--trace", str(trace)]) == 0
    assert "trace OK" in capsys.readouterr().out


def test_validate_exit_one_on_schema_violation(tmp_path, capsys):
    report = tmp_path / "report.json"
    report.write_text("{}")
    assert validate_main(["--report", str(report)]) == 1
    assert "validation FAILED" in capsys.readouterr().err


def test_validate_exit_one_on_undecodable_json(tmp_path, capsys):
    report = tmp_path / "report.json"
    report.write_text("{ not json")
    assert validate_main(["--report", str(report)]) == 1
    assert "not valid JSON" in capsys.readouterr().err


def test_validate_exit_two_on_unreadable_input(tmp_path, capsys):
    missing = tmp_path / "does-not-exist.json"
    assert validate_main(["--report", str(missing)]) == 2
    assert "cannot read input" in capsys.readouterr().err
