"""Materialized views: construction, matching, and rewritten-plan results."""

import collections

import numpy as np
import pytest

from repro.engine.configuration import primary_configuration
from repro.index.definition import IndexDefinition
from repro.optimizer.plans import ViewScan, walk
from repro.views.matview import (
    COUNT_COLUMN,
    MatViewDefinition,
    ViewColumn,
    build_view,
)

from conftest import load_city_database


@pytest.fixture
def db():
    return load_city_database(n_users=800, n_orders=6000, seed=5)


def test_definition_validation():
    with pytest.raises(ValueError):
        MatViewDefinition(tables=("a", "b", "c"), group_columns=())
    with pytest.raises(ValueError):
        MatViewDefinition(tables=("a", "b"), group_columns=(
            ViewColumn("a", "x"),
        ))
    with pytest.raises(ValueError):
        MatViewDefinition(
            tables=("a",),
            join_pred=(("a", "x"), ("a", "y")),
            group_columns=(ViewColumn("a", "x"),),
        )
    with pytest.raises(ValueError):
        MatViewDefinition(
            tables=("a",),
            group_columns=(ViewColumn("b", "x"),),
        )


def test_single_table_view_counts(db):
    view_def = MatViewDefinition(
        tables=("orders",),
        group_columns=(ViewColumn("orders", "uid"),),
    )
    table, _ = build_view(view_def, db.tables, db.catalog)
    freq = collections.Counter(db.table("orders").column("uid").tolist())
    got = dict(
        zip(
            table.column("orders__uid").tolist(),
            table.column(COUNT_COLUMN).tolist(),
        )
    )
    assert got == dict(freq)


def test_join_view_counts(db):
    view_def = MatViewDefinition(
        tables=("users", "orders"),
        join_pred=(("users", "uid"), ("orders", "uid")),
        group_columns=(
            ViewColumn("users", "city"),
            ViewColumn("orders", "city"),
        ),
    )
    table, _ = build_view(view_def, db.tables, db.catalog)
    users, orders = db.table("users"), db.table("orders")
    city_of = dict(zip(users.column("uid"), users.column("city")))
    counter = collections.Counter(
        (city_of[u], c)
        for u, c in zip(orders.column("uid"), orders.column("city"))
        if u in city_of
    )
    got = {
        (a, b): n
        for a, b, n in zip(
            table.column("users__city"),
            table.column("orders__city"),
            table.column(COUNT_COLUMN),
        )
    }
    assert got == dict(counter)
    assert int(table.column(COUNT_COLUMN).sum()) == sum(counter.values())


def test_view_rewrite_produces_correct_counts(db):
    """A COUNT(*) join query answered through the view matches the
    direct execution."""
    sql = (
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid AND o.city = 'tor' GROUP BY u.city"
    )
    db.apply_configuration(primary_configuration(db.catalog))
    direct = sorted(db.execute(sql).rows())

    # The aggregated city-pair view is tiny (25 rows); COUNT(*) over the
    # rewritten plan must come out of the cnt weights.
    view_def = MatViewDefinition(
        tables=("users", "orders"),
        join_pred=(("users", "uid"), ("orders", "uid")),
        group_columns=(
            ViewColumn("users", "city"),
            ViewColumn("orders", "city"),
        ),
    )
    config = primary_configuration(db.catalog).with_views(
        [view_def], name="V"
    )
    db.apply_configuration(config)
    db.collect_statistics()
    plan = db.plan(sql)
    assert [n for n in walk(plan) if isinstance(n, ViewScan)], (
        "the view should be cheaper than re-joining the base tables"
    )
    rewritten = sorted(db.execute(sql).rows())
    assert rewritten == direct


def test_view_not_matched_when_columns_missing(db):
    view_def = MatViewDefinition(
        tables=("users", "orders"),
        join_pred=(("users", "uid"), ("orders", "uid")),
        group_columns=(ViewColumn("users", "city"),),
    )
    config = primary_configuration(db.catalog).with_views(
        [view_def], name="V"
    )
    db.apply_configuration(config)
    db.collect_statistics()
    # Needs o.city, which the view does not preserve.
    plan = db.plan(
        "SELECT o.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid GROUP BY o.city"
    )
    assert not [n for n in walk(plan) if isinstance(n, ViewScan)]


def test_semijoin_answered_from_view(db):
    view_def = MatViewDefinition(
        tables=("orders",),
        group_columns=(ViewColumn("orders", "uid"),),
    )
    config = primary_configuration(db.catalog).with_views(
        [view_def], name="V"
    )
    db.apply_configuration(config)
    db.collect_statistics()
    sql = (
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid IN "
        "(SELECT uid FROM orders GROUP BY uid HAVING COUNT(*) < 4) "
        "GROUP BY o.city"
    )
    result = sorted(db.execute(sql).rows())
    orders = db.table("orders")
    freq = collections.Counter(orders.column("uid").tolist())
    counter = collections.Counter(
        c for c, u in zip(orders.column("city"), orders.column("uid"))
        if freq[u] < 4
    )
    assert result == sorted(counter.items())


def test_index_on_view(db):
    view_def = MatViewDefinition(
        tables=("orders",),
        group_columns=(ViewColumn("orders", "uid"),),
    )
    config = primary_configuration(db.catalog).with_views(
        [view_def], name="V"
    ).with_indexes(
        [IndexDefinition(table=view_def.name, columns=("orders__uid",))]
    )
    report = db.apply_configuration(config)
    assert report.view_bytes > 0
    assert report.index_bytes > 0


def test_view_refreshes_after_insert(db):
    view_def = MatViewDefinition(
        tables=("orders",),
        group_columns=(ViewColumn("orders", "uid"),),
    )
    config = primary_configuration(db.catalog).with_views(
        [view_def], name="V"
    )
    db.apply_configuration(config)
    before = db._built.view_tables[view_def.name].column(COUNT_COLUMN).sum()
    db.insert_rows(
        "orders",
        {
            "oid": np.array([10_001]),
            "uid": np.array([0]),
            "city": np.array(["tor"], dtype=object),
            "amount": np.array([5]),
        },
    )
    after = db._built.view_tables[view_def.name].column(COUNT_COLUMN).sum()
    assert after == before + 1
