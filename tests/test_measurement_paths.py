"""Measurement helpers: estimate paths, sampling costs, API surface."""

import numpy as np
import pytest

import repro
from repro.analysis.measurements import estimate_workload, measure_workload
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from repro.workload.sampling import estimated_costs
from repro.workload.workload import Workload, make_instance


def small_workload():
    sqls = [
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 "
        "GROUP BY o.city",
        "SELECT u.city, COUNT(*) FROM users u GROUP BY u.city",
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid GROUP BY u.city",
    ]
    return Workload(
        "W", [make_instance(s, "W", i=i) for i, s in enumerate(sqls)]
    )


def test_public_api_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_estimated_costs_positive(city_db_p):
    workload = small_workload()
    costs = estimated_costs(city_db_p, workload)
    assert len(costs) == 3
    assert (costs > 0).all()


def test_estimate_workload_current_config(city_db_p):
    workload = small_workload()
    estimates = estimate_workload(city_db_p, workload)
    assert estimates.configuration == city_db_p.configuration.name
    assert not estimates.timed_out.any()
    assert len(estimates.sqls) == 3


def test_estimate_workload_hypothetical(city_db_p):
    workload = small_workload()
    one_c = one_column_configuration(city_db_p.catalog, name="1C")
    hypothetical = estimate_workload(
        city_db_p, workload, hypothetical=one_c
    )
    current = estimate_workload(city_db_p, workload)
    assert hypothetical.configuration == "1C"
    # Hypothetically adding indexes never raises the estimated cost.
    assert (hypothetical.elapsed <= current.elapsed + 1e-9).all()


def test_measure_matches_execute(city_db_p):
    workload = small_workload()
    measurement = measure_workload(city_db_p, workload)
    for sql, elapsed in zip(measurement.sqls, measurement.elapsed):
        assert city_db_p.execute(sql).elapsed == elapsed


def test_measure_respects_custom_timeout(city_db_p):
    workload = small_workload()
    measurement = measure_workload(city_db_p, workload, timeout=1e-4)
    assert measurement.timed_out.all()
    assert np.allclose(measurement.elapsed, 1e-4)
    assert measurement.lower_bound_total() == pytest.approx(3e-4)


def test_workload_container_api():
    workload = small_workload()
    assert len(workload) == 3
    assert len(workload.sqls()) == 3
    assert all(q.family == "W" for q in workload)
    assert workload.queries[0].meta_dict() == {"i": "0"}


def test_configuration_names_survive_pipeline(city_db):
    p = primary_configuration(city_db.catalog, name="P")
    city_db.apply_configuration(p)
    measurement = measure_workload(city_db, small_workload())
    assert measurement.configuration == "P"
    explicit = measure_workload(
        city_db, small_workload(), configuration="custom"
    )
    assert explicit.configuration == "custom"
