"""Cross-query optimization: template identity, plan replay, bind
templates, the subplan cache, and morsel execution.

The contract under test everywhere: the caches may only change *when*
work happens, never *what* it produces — replayed plans, rebound
queries and morsel-evaluated batches must be indistinguishable from
their from-scratch counterparts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor.morsels import MIN_MORSEL_ROWS, MorselPool, morsel_rows
from repro.executor.subplan import SubplanCache, subplan_cache_enabled
from repro.optimizer.planner import Planner
from repro.optimizer.plans import explain
from repro.optimizer.templates import (
    PlanTemplate,
    TemplatePlanner,
    template_key,
    templates_enabled,
)
from repro.sql.binder import Binder
from repro.sql.parser import parse, scan_literals, tokenize
from repro.sql.templates import BindTemplates
from repro.workload.workload import make_instance

from conftest import load_city_database


@pytest.fixture(scope="module")
def module_db():
    """One city database shared by the read-only tests in this module."""
    return load_city_database()


def _age_sql(threshold):
    return (
        "select city, count(*) from users "
        f"where age > {threshold} group by city"
    )


def _join_sql(threshold, city):
    return (
        "select u.city, sum(o.amount) from users u, orders o "
        "where u.uid = o.uid and o.amount > "
        f"{threshold} and u.city = '{city}' group by u.city"
    )


# ----------------------------------------------------------------------
# Template identity


@settings(max_examples=25, deadline=None)
@given(a=st.integers(0, 120), b=st.integers(0, 120))
def test_property_constants_share_optimizer_template_key(module_db, a, b):
    env = module_db.planner_env()
    key_a = template_key(module_db.bind(_age_sql(a)), env)
    key_b = template_key(module_db.bind(_age_sql(b)), env)
    assert key_a is not None
    assert key_a == key_b


@settings(max_examples=25, deadline=None)
@given(
    a=st.integers(0, 99), b=st.integers(0, 99),
    city=st.sampled_from(["tor", "mtl", "van"]),
)
def test_property_join_shape_shares_template_key(module_db, a, b, city):
    env = module_db.planner_env()
    key_a = template_key(module_db.bind(_join_sql(a, city)), env)
    key_b = template_key(module_db.bind(_join_sql(b, city)), env)
    assert key_a is not None
    assert key_a == key_b


def test_different_shapes_get_different_keys(module_db):
    env = module_db.planner_env()
    assert template_key(module_db.bind(_age_sql(30)), env) != template_key(
        module_db.bind(_join_sql(30, "tor")), env
    )


def test_template_key_is_env_independent(module_db):
    from repro.engine.configuration import one_column_configuration

    bound = module_db.bind(_join_sql(40, "mtl"))
    real = template_key(bound, module_db.planner_env())
    hypo = template_key(
        bound,
        module_db.hypothetical_env(
            one_column_configuration(module_db.catalog)
        ),
    )
    assert real == hypo


def test_views_fall_outside_the_template_subset(city_db):
    from repro.engine.configuration import primary_configuration
    from repro.views.matview import MatViewDefinition, ViewColumn

    view_def = MatViewDefinition(
        tables=("users", "orders"),
        join_pred=(("users", "uid"), ("orders", "uid")),
        group_columns=(ViewColumn("users", "city"),),
    )
    config = primary_configuration(city_db.catalog).with_views(
        [view_def], name="V"
    )
    bound = city_db.bind(_age_sql(30))
    env = city_db.hypothetical_env(config, force_hypothetical=True)
    assert env.views
    assert template_key(bound, env) is None


@settings(max_examples=25, deadline=None)
@given(c1=st.integers(0, 10_000), c2=st.integers(0, 10_000))
def test_property_workload_template_key_ignores_constant(c1, c2):
    q1 = make_instance("q1", "NREF2J", r=3, constant=c1, constant_freq=10)
    q2 = make_instance("q2", "NREF2J", r=3, constant=c2, constant_freq=10)
    assert q1.template_key() == q2.template_key()
    other = make_instance("q3", "NREF2J", r=4, constant=c1, constant_freq=10)
    assert q1.template_key() != other.template_key()


# ----------------------------------------------------------------------
# Replay equivalence and invalidation


def test_replay_is_bit_identical_to_full_enumeration(module_db):
    env = module_db.planner_env()
    template = PlanTemplate()
    for threshold, city in ((5, "tor"), (60, "mtl"), (95, "van")):
        bound = module_db.bind(_join_sql(threshold, city))
        full = Planner(env).plan(bound)
        templated = TemplatePlanner(env).plan_with_template(bound, template)
        assert explain(templated) == explain(full)
        assert templated.est.cost == pytest.approx(full.est.cost)


def test_replay_matches_under_hypothetical_envs(module_db):
    from repro.engine.configuration import (
        one_column_configuration,
        primary_configuration,
    )

    template = PlanTemplate()
    for config in (
        primary_configuration(module_db.catalog),
        one_column_configuration(module_db.catalog),
    ):
        env = module_db.hypothetical_env(config)
        bound = module_db.bind(_join_sql(50, "tor"))
        full = Planner(env).plan(bound)
        templated = TemplatePlanner(env).plan_with_template(bound, template)
        assert explain(templated) == explain(full)


def test_plan_cache_replays_and_counts(monkeypatch):
    monkeypatch.delenv("REPRO_PLAN_TEMPLATES", raising=False)
    assert templates_enabled()
    db = load_city_database()
    db.plan(_age_sql(10))
    db.plan(_age_sql(90))
    stats = db.cache_stats()["template_cache"]
    assert stats["misses"] == 1    # one build for the shared key
    assert stats["hits"] == 1      # the second constant replays


def test_insert_rows_invalidates_template_cache():
    db = load_city_database()
    db.plan(_age_sql(10))
    assert len(db._template_cache) == 1
    db.insert_rows(
        "users",
        {"uid": np.array([10_001]), "city": np.array(["tor"], dtype=object),
         "age": np.array([33])},
    )
    assert len(db._template_cache) == 0
    assert db.cache_stats()["template_cache"]["invalidations"] >= 1


def test_apply_configuration_invalidates_template_cache():
    from repro.engine.configuration import primary_configuration

    db = load_city_database()
    db.plan(_age_sql(10))
    assert len(db._template_cache) == 1
    db.apply_configuration(primary_configuration(db.catalog))
    assert len(db._template_cache) == 0


def test_disabling_the_knob_bypasses_the_cache(monkeypatch):
    monkeypatch.setenv("REPRO_PLAN_TEMPLATES", "0")
    assert not templates_enabled()
    db = load_city_database()
    db.plan(_age_sql(10))
    db.plan(_age_sql(90))
    assert len(db._template_cache) == 0


def test_knob_off_and_on_agree_end_to_end(monkeypatch):
    results = {}
    for state in ("0", "1"):
        monkeypatch.setenv("REPRO_PLAN_TEMPLATES", state)
        monkeypatch.setenv("REPRO_SUBPLAN_CACHE", state)
        db = load_city_database()
        rows = []
        for threshold, city in ((5, "tor"), (60, "mtl"), (5, "tor")):
            result = db.execute(_join_sql(threshold, city))
            rows.append((result.elapsed, result.rows()))
        results[state] = rows
    assert results["0"] == results["1"]


# ----------------------------------------------------------------------
# Bind templates


def test_bind_template_replay_equals_plain_binding(module_db):
    templates = BindTemplates(module_db.catalog)
    for threshold, city in ((12, "tor"), (77, "mtl"), (3, "van")):
        sql = _join_sql(threshold, city)
        via_template = templates.bind(sql)
        plain = Binder(module_db.catalog).bind(parse(sql))
        assert via_template == plain
        assert via_template.sql == plain.sql
    assert len(templates) == 1    # one skeleton served all three


def test_bind_template_bad_member_falls_back(module_db):
    templates = BindTemplates(module_db.catalog)
    assert templates.bind("select nope from users where age > 3") is None


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(0, 10**9),
    s=st.text(
        alphabet="abc '",
        min_size=0, max_size=8,
    ),
)
def test_property_scan_literals_matches_tokenizer(n, s):
    literal = s.replace("'", "''")
    sql = f"select uid from users where age > {n} and city = '{literal}'"
    swept = scan_literals(sql)
    lexed = [
        (t.kind, t.text, t.pos)
        for t in tokenize(sql)
        if t.kind in ("number", "string")
    ]
    assert swept == lexed


# ----------------------------------------------------------------------
# Subplan cache


def test_subplan_cache_hit_requires_identical_backing():
    cache = SubplanCache()
    base = np.arange(10)
    builds = []

    def build():
        builds.append(1)
        return base * 2

    first = cache.semi_values("k", (base,), build)
    second = cache.semi_values("k", (base,), build)
    assert first is second
    assert len(builds) == 1
    # An equal but distinct array is treated as new data: rebuild.
    cache.semi_values("k", (base.copy(),), build)
    assert len(builds) == 2


def test_subplan_cache_invalidate_clears_every_kind():
    cache = SubplanCache()
    base = np.arange(4)
    cache.semi_values("s", (base,), lambda: 1)
    cache.filter_mask("m", (base,), lambda: 2)
    cache.join_domain("d", (base,), lambda: 3)
    cache.invalidate()
    builds = []
    cache.semi_values("s", (base,), lambda: builds.append(1))
    cache.filter_mask("m", (base,), lambda: builds.append(1))
    cache.join_domain("d", (base,), lambda: builds.append(1))
    assert len(builds) == 3
    assert cache.stats.invalidations == 1


def test_subplan_knob_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_SUBPLAN_CACHE", raising=False)
    assert subplan_cache_enabled()
    for off in ("0", "false", "NO", "off"):
        monkeypatch.setenv("REPRO_SUBPLAN_CACHE", off)
        assert not subplan_cache_enabled()
    assert subplan_cache_enabled(flag=True)


# ----------------------------------------------------------------------
# Morsels


def test_morsel_rows_clamps_and_disables(monkeypatch):
    monkeypatch.delenv("REPRO_MORSEL_ROWS", raising=False)
    assert morsel_rows() == 0
    assert morsel_rows(10) == MIN_MORSEL_ROWS
    assert morsel_rows(0) == 0
    monkeypatch.setenv("REPRO_MORSEL_ROWS", "not-a-number")
    assert morsel_rows() == 0
    monkeypatch.setenv("REPRO_MORSEL_ROWS", "65536")
    assert morsel_rows() == 65536


def test_morsel_map_concat_preserves_order():
    pool = MorselPool(MIN_MORSEL_ROWS)
    try:
        length = 10 * MIN_MORSEL_ROWS + 7
        out = pool.map_concat(
            lambda lo, hi: np.arange(lo, hi), length
        )
        np.testing.assert_array_equal(out, np.arange(length))
        parts = pool.map_slices(lambda lo, hi: hi - lo, length)
        assert sum(parts) == length
        assert parts[:-1] == [MIN_MORSEL_ROWS] * 10
    finally:
        pool.shutdown()


def test_morsel_execution_is_byte_identical(monkeypatch):
    results = {}
    for rows in ("0", str(MIN_MORSEL_ROWS)):
        monkeypatch.setenv("REPRO_MORSEL_ROWS", rows)
        db = load_city_database()
        result = db.execute(_join_sql(20, "tor"))
        results[rows] = (result.elapsed, result.rows())
    assert results["0"] == results[str(MIN_MORSEL_ROWS)]
