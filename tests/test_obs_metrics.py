"""The observability primitives: recorders, spans, metrics, events."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.obs import (
    MetricsRegistry,
    NullRecorder,
    TraceRecorder,
    recording,
)


# ----------------------------------------------------------------------
# Disabled (NullRecorder) behaviour


def test_null_recorder_is_default_and_disabled():
    assert isinstance(obs.get_recorder(), NullRecorder)
    assert not obs.is_enabled()


def test_disabled_instrumentation_records_nothing():
    # Drive every dispatch helper while the NullRecorder is active...
    with obs.span("some.work", detail=1) as handle:
        handle.set(more=2)
    obs.counter_add("some.counter", 5)
    obs.gauge_set("some.gauge", 1.0)
    obs.observe("some.histogram", 0.5)
    obs.event("some_event", payload=True)
    # ...then check a freshly installed recorder sees none of it.
    with recording() as recorder:
        pass
    assert recorder.spans() == []
    assert recorder.events() == []
    snapshot = recorder.metrics.snapshot()
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
    assert snapshot["histograms"] == {}


def test_null_span_handle_is_shared_and_chainable():
    first = obs.span("a")
    second = obs.span("b", attr=1)
    assert first is second              # one shared no-op instance
    with first as handle:
        assert handle.set(x=1) is handle


# ----------------------------------------------------------------------
# recording() install/restore


def test_recording_installs_and_restores():
    before = obs.get_recorder()
    with recording() as recorder:
        assert obs.get_recorder() is recorder
        assert obs.is_enabled()
    assert obs.get_recorder() is before
    assert not obs.is_enabled()


def test_recording_restores_on_error():
    before = obs.get_recorder()
    with pytest.raises(RuntimeError):
        with recording():
            raise RuntimeError("boom")
    assert obs.get_recorder() is before


# ----------------------------------------------------------------------
# Spans


def test_span_nesting_assigns_parent_ids():
    with recording() as recorder:
        with obs.span("outer") as outer:
            with obs.span("inner", depth=2):
                pass
            outer.set(children=1)
    spans = {s.name: s for s in recorder.spans()}
    assert spans["inner"].parent_id == spans["outer"].span_id
    assert spans["outer"].parent_id is None
    assert spans["outer"].attrs["children"] == 1
    assert spans["inner"].attrs["depth"] == 2
    assert spans["outer"].wall_s >= 0.0


def test_span_stacks_are_per_thread():
    with recording() as recorder:
        barrier = threading.Barrier(2)

        def work(name):
            barrier.wait()              # both threads open spans together
            with obs.span(name):
                barrier.wait()
            return name

        with ThreadPoolExecutor(max_workers=2) as pool:
            list(pool.map(work, ["t0", "t1"]))
    # Concurrent spans on different threads must both be roots — neither
    # may adopt the other as a parent.
    assert [s.parent_id for s in recorder.spans()] == [None, None]
    ids = [s.span_id for s in recorder.spans()]
    assert len(set(ids)) == 2


# ----------------------------------------------------------------------
# Metrics


def test_counters_aggregate_across_threads():
    with recording() as recorder:
        def bump(_):
            for _i in range(100):
                obs.counter_add("obs_test.hits")
                obs.counter_add("obs_test.bytes", 3)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(bump, range(8)))
    counters = recorder.metrics.snapshot()["counters"]
    assert counters["obs_test.hits"] == 800
    assert counters["obs_test.bytes"] == 2400


def test_counter_coerces_numpy_values_to_int():
    registry = MetricsRegistry()
    registry.counter_add("rows", np.int64(7))
    registry.counter_add("rows", np.int64(5))
    value = registry.snapshot()["counters"]["rows"]
    assert value == 12
    assert type(value) is int


def test_gauge_keeps_last_value():
    registry = MetricsRegistry()
    registry.gauge_set("depth", 3)
    registry.gauge_set("depth", 1.5)
    assert registry.snapshot()["gauges"]["depth"] == 1.5


def test_histogram_summary_and_decade_buckets():
    registry = MetricsRegistry()
    for value in (0.5, 5.0, 50.0, 0.0):
        registry.observe("seconds", value)
    hist = registry.snapshot()["histograms"]["seconds"]
    assert hist["count"] == 4
    assert hist["sum"] == pytest.approx(55.5)
    assert hist["min"] == 0.0
    assert hist["max"] == 50.0
    assert hist["buckets"]["<=0"] == 1
    assert hist["buckets"]["[1e-1,1e0)"] == 1
    assert hist["buckets"]["[1e0,1e1)"] == 1
    assert hist["buckets"]["[1e1,1e2)"] == 1


# ----------------------------------------------------------------------
# Events


def test_events_are_ordered_and_filterable():
    recorder = TraceRecorder()
    recorder.event("alpha", n=1)
    recorder.event("beta", n=2)
    recorder.event("alpha", n=3)
    assert [e["seq"] for e in recorder.events()] == [1, 2, 3]
    alphas = recorder.events(kind="alpha")
    assert [e["payload"]["n"] for e in alphas] == [1, 3]


def test_event_payload_may_carry_its_own_kind_field():
    # The measurement events tag A/E/H costs with a payload key named
    # "kind"; the discriminator argument is positional-only so the two
    # cannot collide.
    recorder = TraceRecorder()
    recorder.event("measurement", kind="A", queries=4)
    (event,) = recorder.events()
    assert event["kind"] == "measurement"
    assert event["payload"]["kind"] == "A"
