"""Trace JSONL round-trips, run reports, and CLI observability flags."""

import json

import pytest

from repro import obs
from repro.bench.cli import main
from repro.obs import (
    SchemaError,
    recording,
    validate_run_report,
    validate_trace_record,
)
from repro.obs.validate import main as validate_main


# ----------------------------------------------------------------------
# Trace files


def test_trace_jsonl_round_trip(tmp_path):
    with recording() as recorder:
        with obs.span("outer", label="x"):
            with obs.span("inner"):
                obs.counter_add("c", 2)
        obs.event("configuration", database="DB", configuration="P",
                  fingerprint="abc123")
    path = tmp_path / "trace.jsonl"
    written = recorder.write_trace(path)

    lines = path.read_text().splitlines()
    assert written == len(lines) == 3
    records = [json.loads(line) for line in lines]
    for record in records:
        validate_trace_record(record)
    # Spans first (ordered by id), then events (ordered by seq).
    assert [r["type"] for r in records] == ["span", "span", "event"]
    assert records[0]["span_id"] < records[1]["span_id"]
    by_name = {r["name"]: r for r in records if r["type"] == "span"}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert records[2]["payload"]["fingerprint"] == "abc123"


def test_validate_trace_record_rejects_malformed():
    with pytest.raises(SchemaError):
        validate_trace_record({"no": "type"})
    with pytest.raises(SchemaError):
        validate_trace_record({"type": "banana"})
    with pytest.raises(SchemaError):
        validate_trace_record(
            {"type": "span", "span_id": 0, "parent_id": None,
             "name": "x", "start": 1.0, "wall_s": 0.1}
        )  # span_id below minimum


def test_validate_run_report_rejects_missing_run_keys():
    with pytest.raises(SchemaError):
        validate_run_report({"schema": "repro.report/v1"})


# ----------------------------------------------------------------------
# CLI: --trace / --report / --metrics on a tiny fig3 run


FIG3_ARGS = ["run", "fig3", "--scale", "0.03", "--workload-size", "4"]


@pytest.fixture(scope="module")
def traced_fig3(tmp_path_factory):
    """One tiny traced fig3 run shared by the assertions below."""
    root = tmp_path_factory.mktemp("traced-fig3")
    trace = root / "trace.jsonl"
    report = root / "report.json"
    results = root / "results"
    code = main(FIG3_ARGS + [
        "--results-dir", str(results),
        "--trace", str(trace),
        "--report", str(report),
        "--metrics",
        "--stats",
    ])
    assert code == 0
    return {"trace": trace, "report": report, "results": results}


def test_traced_run_emits_valid_trace(traced_fig3):
    lines = traced_fig3["trace"].read_text().splitlines()
    assert lines
    records = [json.loads(line) for line in lines]
    for record in records:
        validate_trace_record(record)
    names = {r["name"] for r in records if r["type"] == "span"}
    assert "bench.experiment" in names
    assert "session.measure" in names
    assert "db.apply_configuration" in names


def test_traced_run_report_contents(traced_fig3):
    report = json.loads(traced_fig3["report"].read_text())
    validate_run_report(report)
    assert report["schema"] == "repro.report/v1"

    run = report["run"]
    assert run["seed"] == 405
    assert run["scale"] == 0.03
    assert run["experiments"] == ["fig3"]

    # Fingerprints for every configuration fig3 builds: P, 1C, and R.
    names = {key.split(":", 1)[1] for key in report["fingerprints"]}
    assert {"P", "1C"} <= names
    assert all(report["fingerprints"].values())

    assert "measure_workload" in report["stages"]
    assert report["stages"]["measure_workload"]["count"] >= 3

    caches = report["caches"]
    assert caches["artifact"]["stores"] > 0
    (db_caches,) = caches["databases"].values()
    assert db_caches["plan_cache"]["misses"] > 0
    assert db_caches["bind_cache"]["hits"] > 0

    actuals = [m for m in report["measurements"] if m["kind"] == "A"]
    assert {m["configuration"] for m in actuals} >= {"P", "1C"}
    for measurement in actuals:
        assert len(measurement["per_query"]) == measurement["queries"] == 4

    assert report["metrics"]["counters"]["engine.queries_executed"] > 0


def test_traced_run_passes_module_validator(traced_fig3, capsys):
    code = validate_main([
        "--trace", str(traced_fig3["trace"]),
        "--report", str(traced_fig3["report"]),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace OK" in out and "report OK" in out


def test_observability_flags_do_not_change_results(traced_fig3, tmp_path):
    plain = tmp_path / "results-plain"
    code = main(FIG3_ARGS + ["--results-dir", str(plain)])
    assert code == 0
    traced_text = (traced_fig3["results"] / "fig3.txt").read_bytes()
    assert (plain / "fig3.txt").read_bytes() == traced_text


def test_recorder_restored_after_cli_run(traced_fig3):
    assert not obs.is_enabled()


# ----------------------------------------------------------------------
# Report-backed --stats output


def test_stats_report_text_matches_report_backing(traced_fig3, tmp_path):
    from repro.bench.context import BenchContext, BenchSettings

    context = BenchContext(BenchSettings(scale=0.03, workload_size=4))
    context.database("A", "nref")
    text = context.stats_report()
    assert "bench stage timings" in text
    assert "artifact cache" in text
    assert "plan cache" in text
    report = context.run_report()
    validate_run_report(report)
    assert obs.render_text(report) == text
