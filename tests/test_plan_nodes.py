"""Plan node helpers: describe strings, walk, explain rendering."""

from repro.index.definition import IndexDefinition
from repro.optimizer.environment import IndexInfo, ViewInfo
from repro.optimizer.plans import (
    HashAggregate,
    HashJoin,
    IndexNLJoin,
    IndexScan,
    PlanEstimate,
    SemiFilter,
    SemiIndexScan,
    SemiSource,
    SeqScan,
    ViewScan,
    explain,
    walk,
)
from repro.views.matview import MatViewDefinition, ViewColumn


def info_for(table="t", columns=("a",)):
    return IndexInfo.hypothetical_on(
        IndexDefinition(table=table, columns=columns), 1000, 8
    )


def test_describe_strings():
    scan = SeqScan(alias="x", table="t", columns=["a"])
    assert scan.describe() == "SeqScan(x=t)"

    ix = IndexScan(alias="x", table="t", index=info_for(), columns=["a"])
    assert "IndexScan(x=t via [a])" == ix.describe()
    ix.index_only = True
    assert ix.describe().startswith("IndexOnlyScan")

    inl = IndexNLJoin(
        outer=scan, alias="y", table="t", index=info_for(),
        outer_key="x.a", inner_column="a", columns=["a"],
    )
    assert "IndexNLJoin(x.a -> y.a)" == inl.describe()
    inl.index_only = True
    assert inl.describe().startswith("IndexOnlyNLJoin")

    join = HashJoin(scan, scan, ["x.a"], ["x.a"])
    assert "x.a=x.a" in join.describe()

    agg = HashAggregate(scan, [], [])
    assert "ALL" in agg.describe()

    vdef = MatViewDefinition(
        tables=("t",), group_columns=(ViewColumn("t", "a"),)
    )
    vs = ViewScan(
        view=ViewInfo(vdef, 10, 1, 16),
        aliases=("x",),
        column_map={"x.a": "t__a"},
    )
    assert vdef.name in vs.describe()


def test_semi_source_describe():
    class FakeSemi:
        sub_table = "t"
        sub_column = "a"
        having_op = "<"
        having_value = 4

    source = SemiSource(semi=FakeSemi(), via="index_only")
    assert "semi[index_only] t.a < 4" == source.describe()


def test_walk_and_explain():
    left = SeqScan(alias="x", table="t", columns=["a"])
    left.est = PlanEstimate(10, 8, 1.0)
    right = SeqScan(alias="y", table="u", columns=["b"])
    right.est = PlanEstimate(10, 8, 1.0)
    join = HashJoin(left, right, ["x.a"], ["y.b"])
    join.est = PlanEstimate(20, 16, 3.0)
    agg = HashAggregate(join, ["x.a"], [])
    agg.est = PlanEstimate(5, 16, 4.0)

    nodes = list(walk(agg))
    assert len(nodes) == 4
    text = explain(agg)
    assert "HashAggregate" in text and "HashJoin" in text
    assert text.count("SeqScan") == 2
    assert "rows=5" in text


def test_explain_shows_semi_filters():
    class FakeSemi:
        sub_table = "t"
        sub_column = "a"
        having_op = "="
        having_value = 2

    source = SemiSource(semi=FakeSemi(), via="scan")
    scan = SeqScan(
        alias="x", table="t", columns=["a"],
        semi_filters=[SemiFilter(key="x.a", source=source)],
    )
    scan.est = PlanEstimate(10, 8, 1.0)
    assert "[semi] semi[scan] t.a = 2" in explain(scan)


def test_semi_index_scan_describe():
    class FakeSemi:
        sub_table = "t"
        sub_column = "a"
        having_op = "<"
        having_value = 4

    source = SemiSource(semi=FakeSemi(), via="scan")
    node = SemiIndexScan(
        alias="x", table="t", index=info_for(),
        driving=SemiFilter(key="x.a", source=source),
        columns=["a"],
    )
    assert "SemiIndexScan(x=t via [a])" == node.describe()
