"""Planner behavior: access-path selection, join methods, what-if mode."""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from repro.index.definition import IndexDefinition
from repro.optimizer.planner import Planner
from repro.optimizer.plans import (
    HashJoin,
    IndexNLJoin,
    IndexScan,
    SeqScan,
    walk,
)

from conftest import load_city_database


@pytest.fixture
def db():
    # A larger instance so index paths actually win.
    return load_city_database(n_users=5000, n_orders=40000, seed=3)


def plan_for(db, sql):
    return Planner(db.planner_env()).plan(db.bind(sql))


def nodes_of(plan, cls):
    return [n for n in walk(plan) if isinstance(n, cls)]


def test_seq_scan_without_indexes(db):
    db.apply_configuration(primary_configuration(db.catalog))
    plan = plan_for(
        db, "SELECT u.city, COUNT(*) FROM users u GROUP BY u.city"
    )
    assert nodes_of(plan, SeqScan)
    assert not nodes_of(plan, IndexScan)


def test_selective_filter_uses_index(db):
    db.apply_configuration(one_column_configuration(db.catalog))
    plan = plan_for(
        db,
        "SELECT u.city, COUNT(*) FROM users u "
        "WHERE u.uid = 17 GROUP BY u.city",
    )
    scans = nodes_of(plan, IndexScan)
    assert scans, "selective equality should use the uid index"
    assert scans[0].index.definition.columns == ("uid",)


def test_unselective_filter_prefers_scan(db):
    db.apply_configuration(one_column_configuration(db.catalog))
    plan = plan_for(
        db,
        "SELECT u.uid, COUNT(*) FROM users u "
        "WHERE u.city = 'tor' GROUP BY u.uid",
    )
    # city = 'tor' matches ~20% of rows: a full scan is cheaper than
    # fetching a fifth of the heap through an index.
    assert nodes_of(plan, SeqScan)


def test_estimated_cost_monotone_in_configuration(db):
    """More indexes can only lower (or keep) the estimated best cost."""
    sql = (
        "SELECT o.city, COUNT(*) FROM orders o "
        "WHERE o.uid = 3 GROUP BY o.city"
    )
    db.apply_configuration(primary_configuration(db.catalog))
    cost_p = db.estimate(sql)
    db.apply_configuration(one_column_configuration(db.catalog))
    cost_1c = db.estimate(sql)
    assert cost_1c <= cost_p


def test_join_method_selection(db):
    db.apply_configuration(one_column_configuration(db.catalog))
    selective = plan_for(
        db,
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid AND u.uid = 12 GROUP BY u.city",
    )
    assert nodes_of(selective, IndexNLJoin), (
        "a one-row outer should drive an index-nested-loop join"
    )
    unselective = plan_for(
        db,
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid GROUP BY u.city",
    )
    assert nodes_of(unselective, HashJoin), (
        "a full-table join should hash"
    )


def test_what_if_hypothetical_costs(db):
    db.apply_configuration(primary_configuration(db.catalog))
    sql = (
        "SELECT o.city, COUNT(*) FROM orders o "
        "WHERE o.uid = 3 GROUP BY o.city"
    )
    baseline = db.estimate_hypothetical(sql, db.configuration)
    hypothetical = db.configuration.with_indexes(
        [IndexDefinition(table="orders", columns=("uid",))], name="H"
    )
    improved = db.estimate_hypothetical(sql, hypothetical)
    assert improved < baseline
    # Hypothetical estimates are more conservative than estimates taken
    # in the built target configuration (Figure 10's H-vs-E gap).
    db.apply_configuration(
        one_column_configuration(db.catalog)
    )
    built = db.estimate(sql)
    assert built <= improved


def test_plan_explain_renders(db):
    from repro.optimizer.plans import explain

    db.apply_configuration(one_column_configuration(db.catalog))
    plan = plan_for(
        db,
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid AND u.age = 30 GROUP BY u.city",
    )
    text = explain(plan)
    assert "HashAggregate" in text
    assert "rows=" in text and "cost=" in text


def test_semijoin_source_uses_index_only(db):
    db.apply_configuration(one_column_configuration(db.catalog))
    plan = plan_for(
        db,
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid IN "
        "(SELECT uid FROM orders GROUP BY uid HAVING COUNT(*) < 3) "
        "GROUP BY o.city",
    )
    semis = [
        semi
        for node in walk(plan)
        for semi in getattr(node, "semi_filters", [])
    ]
    drivers = [
        node.driving for node in walk(plan)
        if hasattr(node, "driving")
    ]
    sources = [s.source for s in semis] + [d.source for d in drivers]
    assert sources
    assert all(s.via in ("index_only", "view", "scan") for s in sources)
    assert any(s.via == "index_only" for s in sources)


def test_rejects_empty_query():
    from repro.sql.binder import BoundQuery

    db = load_city_database(n_users=50, n_orders=50)
    with pytest.raises(PlanError):
        Planner(db.planner_env()).plan(BoundQuery(relations={}))


def test_configuration_equivalence_of_results(db):
    """Plans under P and 1C return identical answers on a join query."""
    sql = (
        "SELECT u.city, COUNT(DISTINCT o.oid) FROM users u, orders o "
        "WHERE u.uid = o.uid AND u.age = 44 GROUP BY u.city"
    )
    db.apply_configuration(primary_configuration(db.catalog))
    p_rows = sorted(db.execute(sql).rows())
    db.apply_configuration(one_column_configuration(db.catalog))
    c_rows = sorted(db.execute(sql).rows())
    assert p_rows == c_rows


def test_composite_index_prefix_consumption(db):
    config = primary_configuration(db.catalog).with_indexes(
        [IndexDefinition(table="users", columns=("city", "age"))],
        name="comp",
    )
    db.apply_configuration(config)
    plan = plan_for(
        db,
        "SELECT u.uid, COUNT(*) FROM users u "
        "WHERE u.city = 'tor' AND u.age = 30 GROUP BY u.uid",
    )
    scans = nodes_of(plan, IndexScan)
    assert scans
    assert len(scans[0].prefix_filters) == 2
    assert not scans[0].residual_filters
    result = db.execute(
        "SELECT u.uid, COUNT(*) FROM users u "
        "WHERE u.city = 'tor' AND u.age = 30 GROUP BY u.uid"
    )
    users = db.table("users")
    expected = int(
        np.sum((users.column("city") == "tor") & (users.column("age") == 30))
    )
    assert len(result.rows()) == expected
