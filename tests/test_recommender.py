"""Recommender: candidate generation, greedy selection, failure modes."""

import pytest

from repro.common.errors import RecommenderGaveUp
from repro.engine.configuration import primary_configuration
from repro.recommender.candidates import (
    index_candidates,
    roles_of,
    view_candidates,
)
from repro.recommender.profiles import RecommenderProfile
from repro.recommender.whatif import WhatIfRecommender
from repro.workload.workload import Workload, make_instance

from conftest import load_city_database


@pytest.fixture
def db():
    db = load_city_database(n_users=4000, n_orders=30000, seed=11)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    return db


def workload_of(sqls):
    return Workload(
        "W", [make_instance(sql, "W", i=i) for i, sql in enumerate(sqls)]
    )


JOIN_SQL = (
    "SELECT u.city, COUNT(*) FROM users u, orders o "
    "WHERE u.uid = o.uid AND u.age = 30 GROUP BY u.city"
)


def test_roles_extraction(db):
    bound = db.bind(JOIN_SQL)
    roles = roles_of(bound)
    assert roles.eq_filter == {"users": ["age"]}
    assert roles.join == {"users": ["uid"], "orders": ["uid"]}
    assert roles.group_by == {"users": ["city"]}


def test_index_candidates_strategies(db):
    bound = db.bind(JOIN_SQL)
    selective = RecommenderProfile("x", leading_strategy="selective-first")
    groupby = RecommenderProfile("x", leading_strategy="groupby-first")
    sel_multi = [
        ix for ix in index_candidates(bound, db.catalog, selective)
        if ix.table == "users" and ix.width > 1
    ]
    grp_multi = [
        ix for ix in index_candidates(bound, db.catalog, groupby)
        if ix.table == "users" and ix.width > 1
    ]
    assert sel_multi and sel_multi[0].columns[0] == "age"
    assert grp_multi and grp_multi[0].columns[0] == "city", (
        "groupby-first leads composites with the grouping column"
    )


def test_view_candidates_require_profile(db):
    bound = db.bind(JOIN_SQL)
    without = RecommenderProfile("x", consider_views=False)
    with_views = RecommenderProfile("x", consider_views=True)
    assert view_candidates(bound, db.catalog, without) == []
    views = view_candidates(bound, db.catalog, with_views)
    assert views, "a COUNT(*) join query admits view candidates"
    assert any(
        v.is_join_view and set(v.tables) == {"users", "orders"}
        for v in views
    )
    assert any(not v.is_join_view for v in views), (
        "single-table pre-aggregations are proposed too"
    )


def test_view_candidates_skip_non_count(db):
    bound = db.bind(
        "SELECT u.city, SUM(o.amount) FROM users u, orders o "
        "WHERE u.uid = o.uid GROUP BY u.city"
    )
    profile = RecommenderProfile("x", consider_views=True)
    assert all(
        not v.is_join_view
        for v in view_candidates(bound, db.catalog, profile)
    )


def test_recommend_improves_selective_workload(db):
    sqls = [
        f"SELECT o.city, COUNT(*) FROM orders o "
        f"WHERE o.uid = {u} GROUP BY o.city"
        for u in (3, 17, 99, 251, 1000)
    ]
    recommender = WhatIfRecommender(
        db, RecommenderProfile("t", min_improvement=0.001)
    )
    report = recommender.recommend(workload_of(sqls), budget_bytes=10**9)
    assert report.configuration.secondary_indexes(), (
        "point lookups should earn an index on orders.uid"
    )
    assert any(
        ix.columns[0] == "uid" and ix.table == "orders"
        for ix in report.configuration.secondary_indexes()
    )
    assert report.estimated_cost < report.base_cost
    assert report.used_bytes <= report.budget_bytes


def test_zero_budget_recommends_nothing(db):
    sqls = ["SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 "
            "GROUP BY o.city"]
    recommender = WhatIfRecommender(
        db, RecommenderProfile("t", min_improvement=0.001)
    )
    report = recommender.recommend(workload_of(sqls), budget_bytes=0)
    assert report.configuration.secondary_indexes() == []
    assert report.used_bytes == 0


def test_candidate_limit_gives_up(db):
    sqls = [JOIN_SQL]
    recommender = WhatIfRecommender(
        db, RecommenderProfile("t", max_candidates=2)
    )
    with pytest.raises(RecommenderGaveUp) as info:
        recommender.recommend(workload_of(sqls), budget_bytes=10**9)
    assert "exceed the search limit" in str(info.value)


def test_min_improvement_threshold_stops_greedy(db):
    sqls = ["SELECT u.city, COUNT(*) FROM users u GROUP BY u.city"]
    recommender = WhatIfRecommender(
        db, RecommenderProfile("t", min_improvement=0.9)
    )
    report = recommender.recommend(workload_of(sqls), budget_bytes=10**9)
    assert len(report.configuration.secondary_indexes()) == 0


def test_recommendation_respects_budget(db):
    sqls = [
        f"SELECT o.city, COUNT(*) FROM orders o "
        f"WHERE o.uid = {u} GROUP BY o.city"
        for u in range(8)
    ] + [
        "SELECT u.city, COUNT(*) FROM users u WHERE u.age = 30 "
        "GROUP BY u.city",
    ]
    small_budget = 300 * 1024
    recommender = WhatIfRecommender(
        db, RecommenderProfile("t", min_improvement=0.001)
    )
    report = recommender.recommend(workload_of(sqls), budget_bytes=small_budget)
    assert report.used_bytes <= small_budget


def test_recommended_configuration_executes(db):
    sqls = [
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 "
        "GROUP BY o.city",
    ]
    recommender = WhatIfRecommender(
        db, RecommenderProfile("t", min_improvement=0.001)
    )
    report = recommender.recommend(workload_of(sqls), budget_bytes=10**9)
    before = db.execute(sqls[0])
    db.apply_configuration(report.configuration)
    db.collect_statistics()
    after = db.execute(sqls[0])
    assert sorted(after.rows()) == sorted(before.rows())
    assert after.elapsed <= before.elapsed
