"""Cache correctness: fingerprints, plan/estimate memoization, invalidation."""

import pickle

import numpy as np
import pytest

from repro.engine.configuration import (
    Configuration,
    content_fingerprint,
    one_column_configuration,
    primary_configuration,
)
from repro.index.definition import IndexDefinition
from repro.runtime.cache import BoundedCache

from conftest import load_city_database

GROUPED = (
    "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 GROUP BY o.city"
)
SCAN = "SELECT u.city, COUNT(*) FROM users u GROUP BY u.city"
JOIN = (
    "SELECT u.city, COUNT(*) FROM users u, orders o "
    "WHERE u.uid = o.uid GROUP BY u.city"
)
SQLS = [GROUPED, SCAN, JOIN]


# ----------------------------------------------------------------------
# Fingerprints

def test_fingerprint_is_content_based(city_db):
    p1 = primary_configuration(city_db.catalog, name="P")
    p2 = primary_configuration(city_db.catalog, name="initial")
    assert p1.fingerprint == p2.fingerprint          # name is excluded
    one_c = one_column_configuration(city_db.catalog)
    assert one_c.fingerprint != p1.fingerprint


def test_fingerprint_order_insensitive():
    a = IndexDefinition(table="users", columns=("uid",))
    b = IndexDefinition(table="orders", columns=("oid",))
    assert (
        Configuration(name="x", indexes=(a, b)).fingerprint
        == Configuration(name="y", indexes=(b, a)).fingerprint
    )


def test_fingerprint_stable_across_processes():
    # content_fingerprint must not depend on PYTHONHASHSEED or object ids
    # (the artifact store uses it for on-disk file names).
    key = content_fingerprint(("ix", "users", ("uid",), False), 1.0, 100)
    assert key == content_fingerprint(
        ("ix", "users", ("uid",), False), 1.0, 100
    )
    assert len(key) == 16


def test_database_tracks_current_fingerprint(city_db):
    fp_default = city_db.configuration_fingerprint
    city_db.apply_configuration(one_column_configuration(city_db.catalog))
    assert city_db.configuration_fingerprint != fp_default
    city_db.apply_configuration(primary_configuration(city_db.catalog))
    assert city_db.configuration_fingerprint == fp_default


# ----------------------------------------------------------------------
# The BoundedCache primitive

def test_bounded_cache_lru_eviction_and_stats():
    cache = BoundedCache("t", maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refreshes "a"
    cache.put("c", 3)                   # evicts "b", the LRU entry
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1
    assert cache.stats.misses == 1
    assert cache.stats.hits == 3
    cache.invalidate()
    assert len(cache) == 0
    assert cache.stats.invalidations == 1


# ----------------------------------------------------------------------
# Plan/estimate cache correctness: warm results == cold planning

def test_warm_estimates_match_cold_planning(city_db_p):
    warm_first = [city_db_p.estimate(s) for s in SQLS]
    warm_second = [city_db_p.estimate(s) for s in SQLS]
    hits = city_db_p.cache_stats()["plan_cache"]["hits"]
    assert hits >= len(SQLS)
    city_db_p.invalidate_caches()
    cold = [city_db_p.estimate(s) for s in SQLS]
    assert warm_first == warm_second == cold


def test_warm_execution_matches_cold_planning(city_db_p):
    warm = [city_db_p.execute(s).elapsed for s in SQLS]
    city_db_p.invalidate_caches()
    cold = [city_db_p.execute(s).elapsed for s in SQLS]
    assert warm == cold


def test_actual_estimated_hypothetical_share_frontend(city_db_p):
    """A, E and H calls on the same SQL parse+bind once."""
    one_c = one_column_configuration(city_db_p.catalog)
    city_db_p.execute(GROUPED)
    city_db_p.estimate(GROUPED)
    city_db_p.estimate_hypothetical(GROUPED, one_c)
    bind = city_db_p.cache_stats()["bind_cache"]
    assert bind["misses"] == 1
    assert bind["hits"] >= 2


def test_hypothetical_cache_returns_identical_costs(city_db_p):
    one_c = one_column_configuration(city_db_p.catalog)
    first = city_db_p.estimate_hypothetical(GROUPED, one_c)
    second = city_db_p.estimate_hypothetical(GROUPED, one_c)
    city_db_p.invalidate_caches()
    cold = city_db_p.estimate_hypothetical(GROUPED, one_c)
    assert first == second == cold
    # Different flags are distinct cache entries, not collisions.
    forced = city_db_p.estimate_hypothetical(
        GROUPED, one_c, force_hypothetical=True
    )
    assert city_db_p.estimate_hypothetical(
        GROUPED, one_c, force_hypothetical=True
    ) == forced


# ----------------------------------------------------------------------
# Explicit invalidation events

def test_apply_configuration_invalidates_plans(city_db_p):
    cost_p = city_db_p.estimate(GROUPED)
    city_db_p.apply_configuration(
        one_column_configuration(city_db_p.catalog)
    )
    city_db_p.collect_statistics()
    cost_1c = city_db_p.estimate(GROUPED)
    # The uid index makes the grouped query strictly cheaper; a stale
    # cached P plan would have returned cost_p again.
    assert cost_1c < cost_p
    assert city_db_p.cache_stats()["plan_cache"]["invalidations"] >= 2


def test_insert_rows_invalidates_plans(city_db_p):
    before = city_db_p.execute(SCAN).elapsed
    n = 20_000
    city_db_p.insert_rows(
        "users",
        {
            "uid": np.arange(10_000, 10_000 + n),
            "city": np.array(["tor"] * n, dtype=object),
            "age": np.full(n, 30),
        },
    )
    after = city_db_p.execute(SCAN).elapsed
    # The heap grew 40x; a cached pre-insert execution would be stale.
    assert after > before


def test_collect_statistics_invalidates_estimates(city_db_p):
    baseline = city_db_p.estimate(SCAN)
    n = 20_000
    city_db_p.insert_rows(
        "users",
        {
            "uid": np.arange(10_000, 10_000 + n),
            "city": np.array(["tor"] * n, dtype=object),
            "age": np.full(n, 30),
        },
    )
    stale = city_db_p.estimate(SCAN)       # stats still describe 500 rows
    city_db_p.collect_statistics()
    fresh = city_db_p.estimate(SCAN)
    assert stale == baseline
    assert fresh > stale


# ----------------------------------------------------------------------
# Environment cache and pickling

def test_planner_env_memoized_until_invalidated(city_db_p):
    env1 = city_db_p.planner_env()
    env2 = city_db_p.planner_env()
    assert env1 is env2
    city_db_p.collect_statistics()
    assert city_db_p.planner_env() is not env1


def test_database_pickle_roundtrip(city_db_p):
    expected = [city_db_p.estimate(s) for s in SQLS]
    clone = pickle.loads(pickle.dumps(city_db_p))
    assert [clone.estimate(s) for s in SQLS] == expected
    assert clone.configuration_fingerprint == \
        city_db_p.configuration_fingerprint
    # Caches restart cold on the clone.
    assert clone.cache_stats()["plan_cache"]["hits"] == 0


def test_identical_databases_share_costs_via_cold_planning(city_db_p):
    """The cache never changes results: a fresh twin database agrees."""
    twin = load_city_database()
    twin.apply_configuration(primary_configuration(twin.catalog))
    warm = [city_db_p.estimate(s) for s in SQLS]
    warm = [city_db_p.estimate(s) for s in SQLS]    # now all cache hits
    cold = [twin.estimate(s) for s in SQLS]
    assert warm == cold


def test_invalid_jobs_rejected():
    from repro.runtime.session import resolve_jobs

    with pytest.raises(ValueError):
        resolve_jobs("many")
    assert resolve_jobs("4") == 4
    assert resolve_jobs(0) == 1
