"""MeasurementSession: parallel determinism, timeouts, weights, stats."""

import numpy as np
import pytest

from repro.analysis.measurements import estimate_workload, measure_workload
from repro.engine.configuration import one_column_configuration
from repro.runtime.session import MeasurementSession, resolve_jobs
from repro.workload.nref_families import generate_nref2j
from repro.workload.sampling import sample_benchmark_workload
from repro.workload.workload import Workload, make_instance


def small_workload(weights=(1.0, 1.0, 1.0)):
    sqls = [
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 "
        "GROUP BY o.city",
        "SELECT u.city, COUNT(*) FROM users u GROUP BY u.city",
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.uid = o.uid GROUP BY u.city",
    ]
    return Workload(
        "W",
        [
            make_instance(s, "W", weight=w, i=i)
            for i, (s, w) in enumerate(zip(sqls, weights))
        ],
    )


def nref2j_sample(db, size=10):
    full = generate_nref2j(db)
    return sample_benchmark_workload(db, full, size=size, seed=7)


# ----------------------------------------------------------------------
# Determinism: parallel == serial, bit for bit

def test_parallel_measure_bit_identical_on_nref2j(tiny_nref):
    workload = nref2j_sample(tiny_nref)
    with MeasurementSession(tiny_nref, jobs=1) as session:
        serial = session.measure(workload)
    tiny_nref.invalidate_caches()
    with MeasurementSession(tiny_nref, jobs=4) as session:
        parallel = session.measure(workload)
    assert np.array_equal(serial.elapsed, parallel.elapsed)
    assert np.array_equal(serial.timed_out, parallel.timed_out)
    assert serial.sqls == parallel.sqls
    assert np.array_equal(serial.weights, parallel.weights)


def test_parallel_estimate_bit_identical_on_nref2j(tiny_nref):
    workload = nref2j_sample(tiny_nref)
    one_c = one_column_configuration(tiny_nref.catalog, name="1C")
    with MeasurementSession(tiny_nref, jobs=1) as session:
        serial_e = session.estimate(workload)
        serial_h = session.estimate(workload, hypothetical=one_c)
    tiny_nref.invalidate_caches()
    with MeasurementSession(tiny_nref, jobs=4) as session:
        parallel_e = session.estimate(workload)
        parallel_h = session.estimate(workload, hypothetical=one_c)
    assert np.array_equal(serial_e.elapsed, parallel_e.elapsed)
    assert np.array_equal(serial_h.elapsed, parallel_h.elapsed)
    assert parallel_h.configuration == "1C"


def test_parallel_timeouts_bit_identical(tiny_nref):
    workload = nref2j_sample(tiny_nref)
    with MeasurementSession(tiny_nref, jobs=1) as session:
        serial = session.measure(workload, timeout=1e-5)
    with MeasurementSession(tiny_nref, jobs=4) as session:
        parallel = session.measure(workload, timeout=1e-5)
    assert serial.timed_out.all()
    assert np.array_equal(serial.elapsed, parallel.elapsed)
    assert np.array_equal(serial.timed_out, parallel.timed_out)
    assert np.allclose(parallel.elapsed, 1e-5)


def test_what_if_costs_parallel_matches_serial(tiny_nref):
    workload = nref2j_sample(tiny_nref, size=6)
    one_c = one_column_configuration(tiny_nref.catalog, name="1C")
    queries = [tiny_nref.bind(q.sql) for q in workload]
    with MeasurementSession(tiny_nref, jobs=1) as session:
        serial = session.what_if_costs(queries, one_c)
    tiny_nref.invalidate_caches()
    with MeasurementSession(tiny_nref, jobs=4) as session:
        parallel = session.what_if_costs(queries, one_c)
    assert serial == parallel


# ----------------------------------------------------------------------
# Worker-pool resolution and the wrapper API

def test_repro_jobs_env_controls_wrappers(city_db_p, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    parallel = measure_workload(city_db_p, small_workload())
    monkeypatch.setenv("REPRO_JOBS", "1")
    serial = measure_workload(city_db_p, small_workload())
    assert np.array_equal(parallel.elapsed, serial.elapsed)
    assert resolve_jobs() == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs() == 1


def test_weights_propagate_through_measure_and_estimate(city_db_p):
    workload = small_workload(weights=(3.0, 1.0, 2.0))
    measured = measure_workload(city_db_p, workload)
    estimated = estimate_workload(city_db_p, workload)
    assert np.array_equal(measured.weights, [3.0, 1.0, 2.0])
    assert np.array_equal(estimated.weights, [3.0, 1.0, 2.0])
    # Weighted totals follow the bag semantics of Section 2.2.
    expected = float((measured.elapsed * measured.weights).sum())
    assert measured.completed_total() == pytest.approx(expected)


def test_session_is_reusable_across_batches(city_db_p):
    with MeasurementSession(city_db_p, jobs=2) as session:
        first = session.measure(small_workload())
        second = session.measure(small_workload())
    assert np.array_equal(first.elapsed, second.elapsed)


# ----------------------------------------------------------------------
# Statistics

def test_session_stats_report_cache_hit_rates(city_db_p):
    with MeasurementSession(city_db_p, jobs=2) as session:
        session.measure(small_workload())
        session.measure(small_workload())     # warm: plans all cached
        stats = session.stats()
    assert stats["session"]["jobs"] == 2
    assert stats["session"]["queries_measured"] == 6
    assert stats["plan_cache"]["hits"] >= 3
    assert stats["plan_cache"]["hit_rate"] > 0
    assert stats["timings"]["measure"]["count"] == 2
    assert stats["timings"]["measure"]["seconds"] >= 0
