"""Tests for repro.server: sessions, queueing, HTTP, report parity."""

import json

import pytest

from repro import obs
from repro.bench.context import BenchContext, BenchSettings
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.server import (
    BadJobSpec,
    ServerError,
    SessionLimitError,
    SessionStore,
    TenantContext,
    TuningClient,
    TuningServer,
    UnknownSessionError,
    parse_spec,
)

TINY = dict(scale=0.02, workload_size=4)


def tiny_settings():
    return BenchSettings(scale=0.02, workload_size=4)


# ----------------------------------------------------------------------
# SessionStore: eviction, TTL, pinning


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


def test_store_assigns_sequential_ids_and_touches_lru():
    store = SessionStore(max_sessions=4)
    a = store.create("acme")
    b = store.create("biotech")
    assert a.session_id == "s-000001"
    assert b.session_id == "s-000002"
    assert store.get(a.session_id) is a
    assert len(store) == 2


def test_store_evicts_least_recently_used_idle_session():
    store = SessionStore(max_sessions=2)
    a = store.create("a")
    b = store.create("b")
    store.get(a.session_id)            # a is now most recently used
    c = store.create("c")              # evicts b, not a
    assert store.get(a.session_id) is a
    assert store.get(c.session_id) is c
    with pytest.raises(UnknownSessionError):
        store.get(b.session_id)
    assert store.snapshot()["evicted"] == 1


def test_store_never_evicts_sessions_with_jobs_in_flight():
    store = SessionStore(max_sessions=2)
    a = store.create("a")
    b = store.create("b")
    store.acquire_job(a.session_id)
    store.acquire_job(b.session_id)
    with pytest.raises(SessionLimitError):
        store.create("c")
    store.release_job(a.session_id)
    c = store.create("c")              # now a (idle, LRU) is evictable
    assert store.get(c.session_id) is c
    with pytest.raises(UnknownSessionError):
        store.get(a.session_id)


def test_store_expires_idle_sessions_after_ttl():
    clock = FakeClock()
    store = SessionStore(max_sessions=4, ttl_seconds=60.0, clock=clock)
    a = store.create("a")
    clock.now += 30.0
    b = store.create("b")
    clock.now += 45.0                  # a idle 75 s > ttl; b idle 45 s
    assert store.get(b.session_id) is b
    with pytest.raises(UnknownSessionError):
        store.get(a.session_id)
    assert store.snapshot()["expired"] == 1


def test_store_ttl_spares_pinned_sessions():
    clock = FakeClock()
    store = SessionStore(max_sessions=4, ttl_seconds=60.0, clock=clock)
    a = store.create("a")
    store.acquire_job(a.session_id)
    clock.now += 600.0
    assert store.get(a.session_id) is a      # pinned: not expired
    store.release_job(a.session_id)
    clock.now += 600.0
    with pytest.raises(UnknownSessionError):
        store.get(a.session_id)


def test_remove_refuses_busy_session_then_deletes():
    store = SessionStore(max_sessions=4)
    a = store.create("a")
    store.acquire_job(a.session_id)
    with pytest.raises(SessionLimitError):
        store.remove(a.session_id)
    store.release_job(a.session_id)
    store.remove(a.session_id)
    with pytest.raises(UnknownSessionError):
        store.get(a.session_id)


# ----------------------------------------------------------------------
# Tenant isolation


def test_tenant_contexts_use_distinct_artifact_keys():
    settings = tiny_settings()
    acme = TenantContext("acme", settings)
    biotech = TenantContext("biotech", settings)
    plain = BenchContext(settings)
    assert acme._key("workload", "A", "NREF2J") != \
        biotech._key("workload", "A", "NREF2J")
    assert acme._key("workload", "A", "NREF2J") != \
        plain._key("workload", "A", "NREF2J")


def test_two_tenants_measure_identical_results_with_isolated_caches():
    settings = tiny_settings()
    acme = TenantContext("acme", settings)
    biotech = TenantContext("biotech", settings)
    a = acme.measure("A", "NREF2J", "1C")
    b = biotech.measure("A", "NREF2J", "1C")
    assert a.elapsed.tolist() == b.elapsed.tolist()
    assert a.timed_out.tolist() == b.timed_out.tolist()
    # Isolation: each context built its own database instances.
    assert acme.live_databases() and biotech.live_databases()
    acme_dbs = {id(db) for _, db in acme.live_databases()}
    biotech_dbs = {id(db) for _, db in biotech.live_databases()}
    assert not (acme_dbs & biotech_dbs)


# ----------------------------------------------------------------------
# Job-spec parsing


def test_parse_spec_experiment_and_family():
    kind, spec = parse_spec({"experiment": "fig3"})
    assert (kind, spec) == ("experiment", {"experiment": "fig3"})
    kind, spec = parse_spec({"family": "NREF2J"}, default_system="B")
    assert kind == "workload"
    assert spec["system"] == "B"
    assert spec["configurations"] == ["P", "1C", "R"]


@pytest.mark.parametrize("body", [
    "not a dict",
    {},
    {"experiment": "nope"},
    {"experiment": "fig3", "family": "NREF2J"},
    {"experiment": "ablation-budget"},
    {"family": "NOPE"},
    {"family": "NREF2J", "configurations": []},
    {"family": "NREF2J", "configurations": ["P", "XX"]},
])
def test_parse_spec_rejects_bad_bodies(body):
    with pytest.raises(BadJobSpec):
        parse_spec(body)


# ----------------------------------------------------------------------
# HTTP end to end

@pytest.fixture()
def server():
    with TuningServer(port=0, max_sessions=4, queue_capacity=2,
                      workers=1) as srv:
        yield srv


def test_http_session_lifecycle(server):
    client = TuningClient(server.base_url)
    assert client.health()["status"] == "ok"
    session = client.create_session("acme", **TINY)
    assert session["tenant"] == "acme"
    assert [s["id"] for s in client.sessions()] == [session["id"]]
    assert client.session(session["id"])["id"] == session["id"]
    client.delete_session(session["id"])
    assert client.sessions() == []
    with pytest.raises(ServerError) as err:
        client.session(session["id"])
    assert err.value.status == 404


def test_http_bad_requests_map_to_400_and_404(server):
    client = TuningClient(server.base_url)
    with pytest.raises(ServerError) as err:
        client._request("POST", "/v1/sessions", body={"scale": 1})
    assert err.value.status == 400
    with pytest.raises(ServerError) as err:
        client.submit_experiment("s-999999", "fig3")
    assert err.value.status == 404
    session = client.create_session("acme", **TINY)
    with pytest.raises(ServerError) as err:
        client._request(
            "POST", f"/v1/sessions/{session['id']}/workloads",
            body={"experiment": "nope"},
        )
    assert err.value.status == 400
    with pytest.raises(ServerError) as err:
        client.job("j-999999")
    assert err.value.status == 404


def test_http_workload_job_runs_and_reports(server):
    client = TuningClient(server.base_url)
    session = client.create_session("acme", **TINY)
    job = client.submit_workload(session["id"], "NREF2J",
                                 configurations=["P", "1C"])
    seen = []
    final = client.wait(job, timeout=120.0,
                        on_event=lambda e: seen.append(e))
    assert final["status"] == "succeeded"
    measured = final["result"]["measured"]
    assert set(measured) == {"P", "1C"}
    assert measured["P"]["queries"] == TINY["workload_size"]
    names = [e["name"] for e in seen]
    assert "job.started" in names and "job.finished" in names
    assert any(n.startswith("span.") for n in names)
    report = json.loads(client.fetch_report(job))
    obs.validate_run_report(report)
    assert report["run"]["scale"] == TINY["scale"]
    metrics = client.metrics()
    assert metrics["jobs"]["completed"] == 1
    assert metrics["sessions"]["active"] == 1
    # The finished job's cross-query engine counters fold into the
    # queue-lifetime "engine" block (template replays require at least
    # two structurally identical queries, so only builds are certain).
    engine = metrics["engine"]
    assert all(name.startswith(("template.", "subplan.", "morsel."))
               for name in engine)
    assert engine.get("template.bind_builds", 0) >= 1
    assert engine.get("template.plan_builds", 0) >= 1


def test_http_report_409_until_done_and_event_cursor(server):
    client = TuningClient(server.base_url)
    session = client.create_session("acme", **TINY)
    # Block the worker so the job stays queued while we probe.
    with server.queue._recording_lock:
        job = client.submit_workload(session["id"], "NREF2J",
                                     configurations=["P"])
        with pytest.raises(ServerError) as err:
            client.fetch_report(job)
        assert err.value.status == 409
    final = client.wait(job, timeout=120.0)
    # Cursor polling: nothing new after the final cursor.
    again = client.job(job, after=final["cursor"])
    assert again["events"] == []
    assert again["cursor"] == final["cursor"]


def test_http_queue_backpressure_is_429_with_retry_after(server):
    client = TuningClient(server.base_url)
    session = client.create_session("acme", **TINY)
    # Hold the recording lock: submitted jobs cannot finish, so the
    # queue (capacity 2) saturates deterministically.
    with server.queue._recording_lock:
        first = client.submit_workload(session["id"], "NREF2J",
                                       configurations=["P"])
        second = client.submit_workload(session["id"], "NREF2J",
                                        configurations=["P"])
        with pytest.raises(ServerError) as err:
            client.submit_workload(session["id"], "NREF2J",
                                   configurations=["P"])
        assert err.value.status == 429
        assert err.value.retry_after is not None
    assert client.wait(first, timeout=120.0)["status"] == "succeeded"
    assert client.wait(second, timeout=120.0)["status"] == "succeeded"
    metrics = client.metrics()
    assert metrics["jobs"]["rejected"] == 1
    # The rejected submission released its session pin.
    assert client.session(session["id"])["active_jobs"] == 0


def test_http_session_limit_is_503(server):
    client = TuningClient(server.base_url)
    ids = [client.create_session(f"t{i}", **TINY)["id"]
           for i in range(4)]
    # Pin every resident session (as an in-flight job would) so
    # nothing is evictable; a fifth creation must be refused.
    for session_id in ids:
        server.store.acquire_job(session_id)
    try:
        with pytest.raises(ServerError) as err:
            client.create_session("overflow", **TINY)
        assert err.value.status == 503
    finally:
        for session_id in ids:
            server.store.release_job(session_id)


def test_http_concurrent_tenants_get_identical_isolated_results(server):
    client = TuningClient(server.base_url)
    acme = client.create_session("acme", **TINY)
    biotech = client.create_session("biotech", **TINY)
    jobs = {
        tenant: client.submit_workload(sid, "NREF2J",
                                       configurations=["P", "1C"])
        for tenant, sid in (("acme", acme["id"]),
                            ("biotech", biotech["id"]))
    }
    finals = {t: client.wait(j, timeout=180.0) for t, j in jobs.items()}
    assert all(f["status"] == "succeeded" for f in finals.values())
    assert finals["acme"]["result"]["measured"] == \
        finals["biotech"]["result"]["measured"]
    assert finals["acme"]["tenant"] == "acme"
    assert finals["biotech"]["tenant"] == "biotech"


# ----------------------------------------------------------------------
# Report parity with the one-shot pipeline


def test_served_experiment_report_matches_one_shot_canonical_bytes():
    settings = BenchSettings(scale=0.02, workload_size=4, jobs=1)
    # One-shot: exactly the CLI's --report flow, in process.
    context = BenchContext(settings)
    with obs.recording() as recorder:
        with obs.span("bench.experiment", experiment="fig3"):
            ALL_EXPERIMENTS["fig3"](context)
    one_shot = context.run_report(recorder=recorder,
                                  experiments=["fig3"])
    obs.validate_run_report(one_shot)
    expected = (
        json.dumps(obs.canonicalize_run_report(one_shot),
                   indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")

    with TuningServer(port=0) as server:
        client = TuningClient(server.base_url)
        session = client.create_session("acme", scale=0.02,
                                        workload_size=4, jobs=1)
        job = client.submit_experiment(session["id"], "fig3")
        assert client.wait(job, timeout=180.0)["status"] == "succeeded"
        served = client.fetch_report(job, canonical=True)
        raw = client.fetch_report(job)

    assert served == expected
    # The raw (non-canonical) serialization matches write_report's
    # layout: parse-reserialize round-trips to the same bytes.
    document = json.loads(raw)
    assert (
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8") == raw
