"""Shape tests: the paper's qualitative claims at a moderate scale.

These are slower integration tests (one NREF instance at scale 0.15)
asserting the *direction* of the headline results, independent of the
full-scale benchmark run.
"""

import numpy as np
import pytest

from repro.analysis.cfc import CumulativeFrequencyCurve, log_grid
from repro.analysis.measurements import measure_workload
from repro.datagen.nref import load_nref_database
from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from repro.engine.systems import system_a
from repro.workload.nref_families import generate_nref3j
from repro.workload.sampling import sample_benchmark_workload


@pytest.fixture(scope="module")
def setting():
    db = load_nref_database(system_a(), scale=0.15)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    family = generate_nref3j(db)
    workload = sample_benchmark_workload(db, family, size=20)
    p_meas = measure_workload(db, workload, configuration="P")
    db.apply_configuration(
        one_column_configuration(db.catalog, name="1C")
    )
    db.collect_statistics()
    c_meas = measure_workload(db, workload, configuration="1C")
    return db, workload, p_meas, c_meas


def test_1c_total_beats_p(setting):
    __, ___, p_meas, c_meas = setting
    assert c_meas.lower_bound_total() < p_meas.lower_bound_total()


def test_1c_no_worse_on_timeouts(setting):
    __, ___, p_meas, c_meas = setting
    assert c_meas.timeout_count <= p_meas.timeout_count


def test_1c_curve_mostly_above_p(setting):
    __, ___, p_meas, c_meas = setting
    grid = log_grid(1.0, 1800.0, points_per_decade=3)
    p_curve = CumulativeFrequencyCurve(p_meas)
    c_curve = CumulativeFrequencyCurve(c_meas)
    diffs = c_curve(grid) - p_curve(grid)
    assert diffs.mean() >= 0
    assert diffs.max() > 0.05, "1C pulls clearly ahead somewhere"


def test_orders_of_magnitude_exist(setting):
    """Some queries are >=10x faster under 1C (the Boral/DeWitt point)."""
    __, ___, p_meas, c_meas = setting
    done = ~(p_meas.timed_out | c_meas.timed_out)
    ratios = p_meas.elapsed[done] / np.maximum(c_meas.elapsed[done], 1e-9)
    assert ratios.max() >= 10.0


def test_estimates_order_configurations(setting):
    """E(W, 1C) < E(W, P): the optimizer knows 1C is better, even if it
    is conservative about the magnitude (Figure 10's first reading)."""
    db, workload, __, ___ = setting
    # db currently sits in 1C.
    e_1c = sum(db.estimate(q.sql) for q in workload)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    db.collect_statistics()
    e_p = sum(db.estimate(q.sql) for q in workload)
    assert e_1c < e_p
