"""Sharded storage and the shard runtime: partitioning, parity, knobs.

The contract under test everywhere here is **byte-identity**: sharding
is a physical-layout knob, so every observable — query rows, virtual
elapsed times, estimates, statistics, costs — must be identical with
``REPRO_SHARDS`` on or off, for both schemes and with the worker pool
on or off.
"""

import pickle

import numpy as np
import pytest
from conftest import load_city_database

from repro.common.errors import CatalogError
from repro.engine.configuration import (
    Configuration,
    one_column_configuration,
)
from repro.engine.systems import system_a
from repro.optimizer import cost_model as cm
from repro.storage.sharding import (
    SHARD_JOBS_ENV,
    SHARD_SCHEME_ENV,
    SHARDS_ENV,
    ShardedTable,
    ShardRuntime,
    ValueCountSketch,
    hash_assignment,
    range_assignment,
    shard_count,
    shard_jobs,
    shard_scheme,
)
from repro.storage.table import Table


def make_sharded(shards=3, scheme="hash", rows=200, seed=7):
    """A small sharded orders-like table over mixed dtypes."""
    from conftest import make_city_catalog

    schema = make_city_catalog().table("orders")
    rng = np.random.default_rng(seed)
    columns = {
        "oid": np.arange(rows, dtype=np.int64),
        "uid": rng.integers(0, 40, rows),
        "city": rng.choice(
            np.array(["tor", "mtl", "van"], dtype=object), rows
        ),
        "amount": rng.integers(1, 100, rows),
    }
    return ShardedTable(schema, columns, shards=shards, scheme=scheme)


# ----------------------------------------------------------------------
# Environment knobs


def test_shard_count_knob(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV, raising=False)
    assert shard_count() == 0
    monkeypatch.setenv(SHARDS_ENV, "4")
    assert shard_count() == 4
    assert shard_count(7) == 7
    assert shard_count(-2) == 0
    with pytest.raises(ValueError):
        shard_count("four")


def test_shard_jobs_knob(monkeypatch):
    monkeypatch.delenv(SHARD_JOBS_ENV, raising=False)
    assert shard_jobs() == 1
    monkeypatch.setenv(SHARD_JOBS_ENV, "3")
    assert shard_jobs() == 3
    assert shard_jobs(0) == 1
    with pytest.raises(ValueError):
        shard_jobs("many")


def test_shard_scheme_knob(monkeypatch):
    monkeypatch.delenv(SHARD_SCHEME_ENV, raising=False)
    assert shard_scheme() == "hash"
    monkeypatch.setenv(SHARD_SCHEME_ENV, "RANGE")
    assert shard_scheme() == "range"
    with pytest.raises(ValueError):
        shard_scheme("round-robin")


# ----------------------------------------------------------------------
# Assignments


def test_hash_assignment_is_deterministic_and_bounded():
    keys = np.arange(1000, dtype=np.int64)
    a = hash_assignment(keys, 7)
    b = hash_assignment(keys, 7)
    assert np.array_equal(a, b)
    assert a.min() >= 0 and a.max() < 7
    # Every shard gets a nontrivial share of sequential keys.
    assert len(np.unique(a)) == 7


def test_hash_assignment_object_dtype_uses_value_ranks():
    values = np.array(["b", "a", "b", "c", "a"], dtype=object)
    a = hash_assignment(values, 3)
    # Equal values always land on the same shard.
    assert a[0] == a[2] and a[1] == a[4]
    assert np.array_equal(a, hash_assignment(values, 3))


def test_single_shard_assignments_are_all_zero():
    assert hash_assignment(np.arange(5), 1).tolist() == [0] * 5
    assert range_assignment(5, 1).tolist() == [0] * 5


def test_range_assignment_split_convention():
    a = range_assignment(10, 3)
    # np.array_split convention: first 10 % 3 shards get the extra row.
    assert np.bincount(a).tolist() == [4, 3, 3]
    assert np.array_equal(np.sort(a), a)


# ----------------------------------------------------------------------
# ShardedTable invariants


@pytest.mark.parametrize("scheme", ["hash", "range"])
@pytest.mark.parametrize("shards", [1, 3, 7])
def test_shards_partition_all_rows(scheme, shards):
    table = make_sharded(shards=shards, scheme=scheme)
    lengths = table.shard_lengths()
    assert sum(lengths) == table.row_count
    ids = np.concatenate(
        [table.shard_row_ids(i) for i in range(shards)]
    )
    assert np.array_equal(np.sort(ids), np.arange(table.row_count))
    for shard in range(shards):
        expected = table.column("uid")[table.shard_row_ids(shard)]
        assert np.array_equal(table.shard_column(shard, "uid"), expected)


def test_sharded_table_rejects_bad_parameters():
    from conftest import make_city_catalog

    schema = make_city_catalog().table("users")
    with pytest.raises(CatalogError):
        ShardedTable(schema, shards=0)
    with pytest.raises(CatalogError):
        ShardedTable(schema, shards=2, scheme="modulo")


def test_partition_column_defaults_to_primary_key():
    table = make_sharded()
    assert table.partition_column == "oid"


def test_append_rows_reshards():
    table = make_sharded(shards=3, scheme="hash", rows=60)
    before = table.shard_lengths()
    table.append_rows({
        "oid": np.arange(60, 90, dtype=np.int64),
        "uid": np.arange(30, dtype=np.int64),
        "city": np.array(["tor"] * 30, dtype=object),
        "amount": np.ones(30, dtype=np.int64),
    })
    after = table.shard_lengths()
    assert sum(after) == 90
    assert sum(before) == 60
    # The assignment is a pure function of the data: identical to a
    # fresh table built from the appended arrays.
    fresh = ShardedTable(
        table.schema,
        {name: table.column(name) for name in table.column_names()},
        shards=3, scheme="hash",
    )
    assert np.array_equal(table._assignment, fresh._assignment)


@pytest.mark.parametrize("scheme", ["hash", "range"])
def test_pickle_round_trip_reshards_identically(scheme):
    table = make_sharded(shards=4, scheme=scheme)
    clone = pickle.loads(pickle.dumps(table))
    assert clone.shard_lengths() == table.shard_lengths()
    assert np.array_equal(clone._assignment, table._assignment)
    for shard in range(4):
        assert np.array_equal(
            clone.shard_column(shard, "amount"),
            table.shard_column(shard, "amount"),
        )


# ----------------------------------------------------------------------
# ValueCountSketch


def test_sketch_merge_equals_whole_column():
    rng = np.random.default_rng(3)
    parts = [rng.integers(0, 30, n) for n in (17, 0, 40, 9)]
    merged = ValueCountSketch.merge(
        ValueCountSketch.from_values(part) for part in parts
    )
    whole = ValueCountSketch.from_values(np.concatenate(parts))
    assert np.array_equal(merged.values, whole.values)
    assert np.array_equal(merged.counts, whole.counts)
    assert merged.counts.dtype == np.int64
    assert merged.row_count == whole.row_count


def test_sketch_merge_of_nothing_is_empty():
    merged = ValueCountSketch.merge([])
    assert merged.row_count == 0
    assert len(merged.values) == 0


# ----------------------------------------------------------------------
# ShardRuntime: serial and pooled parity


@pytest.mark.parametrize("scheme", ["hash", "range"])
def test_filter_and_isin_masks_match_elementwise(scheme):
    table = make_sharded(shards=3, scheme=scheme)
    runtime = ShardRuntime(jobs=1)
    specs = [("uid", ">", 10), ("amount", "<=", 50)]
    expected = (table.column("uid") > 10) & (table.column("amount") <= 50)
    assert np.array_equal(runtime.filter_mask(table, specs), expected)
    allowed = np.array([1, 5, 9], dtype=np.int64)
    assert np.array_equal(
        runtime.isin_mask(table, "uid", allowed),
        np.isin(table.column("uid"), allowed),
    )
    # Object-dtype columns route through the serial path but still match.
    assert np.array_equal(
        runtime.filter_mask(table, [("city", "=", "tor")]),
        table.column("city") == "tor",
    )


def test_pooled_masks_and_sketches_match_serial():
    table = make_sharded(shards=4, scheme="hash")
    pooled = ShardRuntime(jobs=2)
    serial = ShardRuntime(jobs=1)
    try:
        specs = [("amount", ">=", 25)]
        assert np.array_equal(
            pooled.filter_mask(table, specs),
            serial.filter_mask(table, specs),
        )
        allowed = np.arange(0, 40, 3)
        assert np.array_equal(
            pooled.isin_mask(table, "uid", allowed),
            serial.isin_mask(table, "uid", allowed),
        )
        for a, b in zip(
            pooled.column_sketches(table, "uid"),
            serial.column_sketches(table, "uid"),
        ):
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.counts, b.counts)
            assert a.row_count == b.row_count
        # Segments are registered while pooled work is in flight and
        # swept by invalidate().
        assert pooled._segments
        pooled.invalidate()
        assert not pooled._segments
    finally:
        pooled.close()
        serial.close()


def test_build_dictionary_matches_direct_construction():
    from repro.storage.encoding import ColumnDictionary

    table = make_sharded(shards=3, scheme="hash")
    runtime = ShardRuntime(jobs=1)
    built = runtime.build_dictionary(table, "uid")
    direct = ColumnDictionary(table.column("uid"))
    assert np.array_equal(built.values, direct.values)
    assert np.array_equal(built.counts, direct.counts)
    assert np.array_equal(built.codes, direct.codes)


# ----------------------------------------------------------------------
# Cost model: apportionment and conservation


def test_shard_counts_conserve_the_total():
    parts = cm.shard_counts(10, [4, 3, 3])
    assert sum(parts) == 10
    assert parts == [4, 3, 3]
    assert cm.shard_counts(7, [1, 1, 1]) == [3, 2, 2]
    assert cm.shard_counts(5, [0, 0]) == [5, 0]


def test_sharded_seq_scan_charges_the_total_formula():
    hw = system_a().hardware
    shard_rows = [40, 35, 25]
    assert cm.sharded_seq_scan(hw, 12, 100, shard_rows) \
        == cm.seq_scan(hw, 12, 100)
    with pytest.raises(ValueError):
        cm.sharded_seq_scan(hw, 12, 100, [40, 35])


# ----------------------------------------------------------------------
# Configuration fingerprints


def test_fingerprint_unchanged_when_shards_zero():
    config = Configuration(name="P")
    assert config.shards == 0
    assert config.fingerprint == Configuration(name="P").fingerprint


def test_with_shards_changes_the_fingerprint_and_propagates():
    base = Configuration(name="P")
    sharded = base.with_shards(4)
    assert sharded.shards == 4
    assert sharded.fingerprint != base.fingerprint
    assert sharded.with_shards(4).fingerprint == sharded.fingerprint
    renamed = sharded.renamed("Q")
    assert renamed.shards == 4


# ----------------------------------------------------------------------
# Database end-to-end parity (REPRO_SHARDS on vs off)


QUERIES = [
    "SELECT COUNT(*) FROM orders o WHERE o.uid = 7",
    "SELECT o.city, SUM(o.amount) FROM orders o WHERE o.amount > 40 "
    "GROUP BY o.city",
    "SELECT COUNT(*) FROM orders o, users u WHERE o.uid = u.uid "
    "AND u.city = 'tor'",
]


def _run_pipeline(monkeypatch, shards, scheme="hash"):
    if shards:
        monkeypatch.setenv(SHARDS_ENV, str(shards))
        monkeypatch.setenv(SHARD_SCHEME_ENV, scheme)
    else:
        monkeypatch.delenv(SHARDS_ENV, raising=False)
    db = load_city_database(n_users=120, n_orders=600, seed=1)
    out = []
    for sql in QUERIES:
        result = db.execute(sql)
        out.append((result.rows(), result.elapsed, db.estimate(sql)))
    report = db.apply_configuration(one_column_configuration(db.catalog))
    out.append((report.build_seconds, report.total_bytes))
    db.collect_statistics()
    for sql in QUERIES:
        result = db.execute(sql)
        out.append((result.rows(), result.elapsed, db.estimate(sql)))
    return db, out


@pytest.mark.parametrize("scheme", ["hash", "range"])
def test_database_results_identical_with_sharding(monkeypatch, scheme):
    _, base = _run_pipeline(monkeypatch, shards=0)
    db, sharded = _run_pipeline(monkeypatch, shards=3, scheme=scheme)
    assert repr(sharded) == repr(base)
    assert isinstance(db.table("orders"), ShardedTable)
    assert db.table("orders").shards == 3


def test_database_fingerprint_records_shard_count(monkeypatch):
    base_db, _ = _run_pipeline(monkeypatch, shards=0)
    sharded_db, _ = _run_pipeline(monkeypatch, shards=3)
    assert base_db.configuration_fingerprint \
        != sharded_db.configuration_fingerprint


def test_invalidate_caches_sweeps_shard_segments(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "2")
    db = load_city_database(n_users=50, n_orders=100, seed=2)
    runtime = db._shard_runtime
    assert runtime is not None
    # Force a segment registration, then invalidate through the db.
    runtime._share(db.table("orders").column("uid"))
    assert runtime._segments
    db.invalidate_caches()
    assert not runtime._segments


def test_unsharded_database_has_no_runtime(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV, raising=False)
    db = load_city_database(n_users=50, n_orders=100, seed=2)
    assert db._shard_runtime is None
    assert not isinstance(db.table("orders"), ShardedTable)
    assert isinstance(db.table("orders"), Table)


def test_env_knobs_read_at_construction_not_query_time(monkeypatch):
    monkeypatch.setenv(SHARDS_ENV, "2")
    db = load_city_database(n_users=50, n_orders=100, seed=2)
    monkeypatch.setenv(SHARDS_ENV, "5")
    assert db.table("orders").shards == 2
