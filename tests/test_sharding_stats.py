"""Property tests: per-shard statistics merge to the unsharded ones.

The merge path is built on *exact* value/count sketches
(``np.unique`` per shard, union + integer count sums on merge), so the
properties below assert byte-identity rather than approximation:

* row/page counts, distinct counts, vmin/vmax — exact integers and
  values, compared with ``==`` / ``np.array_equal``;
* histogram-derived arrays (the value-frequency histogram and its
  cumulative row fractions) and every selectivity estimate read off
  them — *also* exact with this design.  The loose assertions
  (``pytest.approx`` with ``rel=1e-12``) document the tolerance the
  contract would need if the sketches were ever made lossy
  (sampled/bounded); today they are satisfied with zero error.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ColumnDef, TableSchema, integer
from repro.stats.column_stats import ColumnStats
from repro.stats.table_stats import TableStats
from repro.storage.sharding import ShardedTable, ValueCountSketch

SHARD_COUNTS = (1, 2, 7)
SCHEMES = ("hash", "range")


def make_table(keys, values, shards, scheme):
    schema = TableSchema(
        "t",
        [
            ColumnDef("k", integer(), "id"),
            ColumnDef("v", integer(), "amount"),
        ],
        primary_key=("k",),
    )
    columns = {
        "k": np.asarray(keys, dtype=np.int64),
        "v": np.asarray(values, dtype=np.int64),
    }
    return ShardedTable(schema, columns, shards=shards, scheme=scheme)


def assert_column_stats_equal(merged, whole):
    assert merged.column == whole.column
    assert merged.row_count == whole.row_count
    assert merged.n_distinct == whole.n_distinct
    assert merged.vmin == whole.vmin and merged.vmax == whole.vmax
    assert merged.mcv_values == whole.mcv_values
    assert merged.mcv_fractions == whole.mcv_fractions
    assert np.array_equal(merged.freq_values, whole.freq_values)
    assert np.array_equal(merged.freq_row_cumfrac, whole.freq_row_cumfrac)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(-10, 10), min_size=1, max_size=120),
    shards=st.sampled_from(SHARD_COUNTS),
    scheme=st.sampled_from(SCHEMES),
)
def test_merged_table_stats_equal_unsharded(values, shards, scheme):
    keys = list(range(len(values)))
    table = make_table(keys, values, shards, scheme)
    sharded = TableStats.collect_sharded(table)
    whole = TableStats.collect(table)
    assert sharded.table == whole.table
    assert sharded.row_count == whole.row_count
    assert sharded.page_count == whole.page_count
    assert sharded.row_width == whole.row_width
    assert set(sharded.columns) == set(whole.columns)
    for name in whole.columns:
        assert_column_stats_equal(sharded.columns[name],
                                  whole.columns[name])


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(-8, 8), min_size=1, max_size=120),
    shards=st.sampled_from(SHARD_COUNTS),
    scheme=st.sampled_from(SCHEMES),
    threshold=st.integers(-9, 9),
)
def test_selectivity_estimates_survive_the_merge(values, shards, scheme,
                                                 threshold):
    """Histogram-derived estimates off merged stats match unsharded ones.

    Exact today (the sketches are exact); asserted with a documented
    rel=1e-12 tolerance so the contract is explicit about how much a
    future lossy sketch would be allowed to drift.
    """
    keys = list(range(len(values)))
    table = make_table(keys, values, shards, scheme)
    merged = TableStats.collect_sharded(table).columns["v"]
    whole = TableStats.collect(table).columns["v"]
    assert merged.eq_selectivity(threshold) \
        == pytest.approx(whole.eq_selectivity(threshold), rel=1e-12)
    for op in ("<", "<=", ">", ">="):
        assert merged.frequency_selectivity(op, threshold) \
            == pytest.approx(
                whole.frequency_selectivity(op, threshold), rel=1e-12
            )
        assert merged.distinct_count_with_frequency(op, threshold) \
            == whole.distinct_count_with_frequency(op, threshold)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(-5, 5), min_size=0, max_size=80),
    cut=st.integers(0, 80),
)
def test_column_stats_merge_equals_collect(values, cut):
    """Two-way ColumnStats.merge equals collect over the whole array."""
    cut = min(cut, len(values))
    left = np.asarray(values[:cut], dtype=np.int64)
    right = np.asarray(values[cut:], dtype=np.int64)
    parts = [
        ColumnStats.from_sketch(
            "v", ValueCountSketch.from_values(part), keep_sketch=True
        )
        for part in (left, right)
    ]
    merged = ColumnStats.merge(parts)
    whole = ColumnStats.collect(
        "v", np.asarray(values, dtype=np.int64)
    )
    assert_column_stats_equal(merged, whole)


def test_merge_requires_retained_sketches():
    stats = ColumnStats.collect("v", np.arange(5))
    with pytest.raises(ValueError):
        ColumnStats.merge([stats, stats])
