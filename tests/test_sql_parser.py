"""Parser and AST printer tests, including round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ParseError
from repro.sql.ast import ColumnRef, Comparison, FuncCall, InSubquery, Star
from repro.sql.parser import parse


def test_simple_select():
    q = parse("SELECT a FROM t")
    assert len(q.select) == 1
    assert q.select[0].expr == ColumnRef(None, "a")
    assert q.from_tables[0].table == "t"
    assert q.from_tables[0].alias is None


def test_aliases_and_qualified_columns():
    q = parse("SELECT t.a, u.b FROM tab t, other u WHERE t.a = u.b")
    assert q.from_tables[0].alias == "t"
    pred = q.where[0]
    assert isinstance(pred, Comparison)
    assert pred.left == ColumnRef("t", "a")
    assert pred.right == ColumnRef("u", "b")


def test_literals():
    q = parse("SELECT a FROM t WHERE b = 'x''y' AND c = 3 AND d = 2.5")
    assert q.where[0].right.value == "x'y"
    assert q.where[1].right.value == 3
    assert q.where[2].right.value == 2.5


def test_aggregates():
    q = parse(
        "SELECT count(*), COUNT(DISTINCT t.a), sum(b), min(c) FROM t"
    )
    call = q.select[0].expr
    assert isinstance(call, FuncCall)
    assert call.func == "count" and isinstance(call.arg, Star)
    distinct = q.select[1].expr
    assert distinct.distinct and distinct.arg == ColumnRef("t", "a")
    assert q.select[2].expr.func == "sum"


def test_group_by_and_subquery():
    q = parse(
        "SELECT r.c1, COUNT(*) FROM r1 r, s1 s WHERE r.c1 = s.c2 "
        "AND r.c1 IN (SELECT c1 FROM r1 GROUP BY c1 HAVING COUNT(*) < 4) "
        "GROUP BY r.c1"
    )
    assert q.group_by == (ColumnRef("r", "c1"),)
    sub = q.where[1]
    assert isinstance(sub, InSubquery)
    assert sub.query.having.op == "<"
    assert sub.query.having.right.value == 4


def test_comparison_operators():
    for op in ("=", "<>", "<", "<=", ">", ">="):
        q = parse(f"SELECT a FROM t WHERE b {op} 1")
        assert q.where[0].op == op


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "SELECT",
        "SELECT FROM t",
        "SELECT a",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t GROUP",
        "SELECT a FROM t WHERE a = ",
        "SELECT a FROM t; DROP TABLE t",
        "SELECT a FROM t WHERE a LIKE 'x'",
    ],
)
def test_rejects_bad_sql(bad):
    with pytest.raises(ParseError):
        parse(bad)


def test_to_sql_roundtrip_examples():
    samples = [
        "SELECT a FROM t",
        "SELECT t.a AS x, COUNT(*) FROM tab t GROUP BY t.a",
        "SELECT r.c1, COUNT(DISTINCT r2.c2) FROM r1 r, r1 r2 "
        "WHERE r.c1 = r2.c1 AND r.k = 'v' GROUP BY r.c1",
        "SELECT a FROM t WHERE b IN "
        "(SELECT b FROM t GROUP BY b HAVING COUNT(*) < 4)",
    ]
    for sql in samples:
        printed = parse(sql).to_sql()
        assert parse(printed) == parse(sql)


_ident = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {
        "select", "from", "where", "group", "by", "having", "and", "in",
        "as", "distinct", "count", "sum", "avg", "min", "max",
    }
)


@settings(max_examples=60, deadline=None)
@given(
    cols=st.lists(_ident, min_size=1, max_size=4, unique=True),
    table=_ident,
    value=st.one_of(
        st.integers(-999, 999),
        st.text(
            alphabet=st.characters(
                whitelist_categories=("Ll", "Nd"), whitelist_characters=" '"
            ),
            max_size=10,
        ),
    ),
)
def test_property_roundtrip(cols, table, value):
    """Printed queries re-parse to an identical AST."""
    from repro.sql.ast import (
        Literal,
        Query,
        SelectItem,
        TableRef,
        query as make_query,
    )

    q = make_query(
        select=[SelectItem(ColumnRef("t", c)) for c in cols],
        from_tables=[TableRef(table, "t")],
        where=[Comparison(ColumnRef("t", cols[0]), "=", Literal(value))],
        group_by=[],
    )
    assert isinstance(q, Query)
    assert parse(q.to_sql()) == q
