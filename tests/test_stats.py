"""Statistics collection and selectivity primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.column_stats import ColumnStats
from repro.stats.table_stats import TableStats


def test_empty_column():
    stats = ColumnStats.collect("c", [])
    assert stats.row_count == 0
    assert stats.n_distinct == 0
    assert stats.eq_selectivity("x") == 0.0
    assert stats.frequency_selectivity("<", 4) == 0.0


def test_basic_counts():
    stats = ColumnStats.collect("c", ["a", "b", "a", "c", "a"])
    assert stats.row_count == 5
    assert stats.n_distinct == 3
    assert stats.mcv_values[0] == "a"
    assert stats.mcv_fractions[0] == pytest.approx(3 / 5)


def test_eq_selectivity_mcv_vs_uniform():
    values = ["hot"] * 90 + [f"cold{i}" for i in range(10)]
    stats = ColumnStats.collect("c", values)
    assert stats.eq_selectivity("hot") == pytest.approx(0.9)
    # Hypothetical mode ignores the MCVs: uniform 1/ndv.
    assert stats.eq_selectivity("hot", use_mcvs=False) == pytest.approx(
        1 / 11
    )


def test_frequency_selectivity_exact():
    # 4 values once each, 2 values three times each: freq profile known.
    values = ["u1", "u2", "u3", "u4", "t1", "t1", "t1", "t2", "t2", "t2"]
    stats = ColumnStats.collect("c", values)
    assert stats.frequency_selectivity("<", 4) == pytest.approx(1.0)
    assert stats.frequency_selectivity("<", 2) == pytest.approx(0.4)
    assert stats.frequency_selectivity("=", 3) == pytest.approx(0.6)
    assert stats.frequency_selectivity(">", 1) == pytest.approx(0.6)
    assert stats.frequency_selectivity(">=", 3) == pytest.approx(0.6)
    assert stats.frequency_selectivity("<=", 1) == pytest.approx(0.4)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(0, 30), min_size=1, max_size=300),
    threshold=st.integers(1, 20),
)
def test_property_frequency_selectivity_matches_brute_force(
    values, threshold
):
    """The frequency profile reproduces exact row fractions."""
    stats = ColumnStats.collect("c", values)
    arr = np.array(values)
    uniques, counts = np.unique(arr, return_counts=True)
    freq_of = dict(zip(uniques.tolist(), counts.tolist()))
    for op, fn in [
        ("<", lambda f: f < threshold),
        ("<=", lambda f: f <= threshold),
        ("=", lambda f: f == threshold),
        (">", lambda f: f > threshold),
        (">=", lambda f: f >= threshold),
    ]:
        expected = sum(1 for v in values if fn(freq_of[v])) / len(values)
        assert stats.frequency_selectivity(op, threshold) == pytest.approx(
            expected
        ), op


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.integers(-5, 5), min_size=1, max_size=200))
def test_property_eq_selectivities_sum_to_one(values):
    stats = ColumnStats.collect("c", values)
    total = sum(
        stats.eq_selectivity(v) for v in set(values)
    )
    assert total == pytest.approx(1.0, abs=0.05)


def test_table_stats_collection(city_db):
    stats = TableStats.collect(city_db.table("users"))
    assert stats.row_count == 500
    assert stats.column("city").n_distinct == 5
    assert stats.column("uid").n_distinct == 500
    assert stats.page_count >= 1
    with pytest.raises(Exception):
        stats.column("missing")
