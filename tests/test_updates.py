"""Insert workloads and the break-even arithmetic."""

import numpy as np
import pytest

from repro.engine.configuration import (
    one_column_configuration,
    primary_configuration,
)
from repro.workload.updates import (
    break_even_inserts,
    nref_neighboring_batch,
    tpch_lineitem_batch,
)


def test_nref_batch_is_fk_consistent(tiny_nref):
    batch = nref_neighboring_batch(tiny_nref, 500)
    proteins = set(tiny_nref.table("protein").column("nref_id").tolist())
    assert set(batch["nref_id_1"].tolist()) <= proteins
    assert set(batch["nref_id_2"].tolist()) <= proteins
    assert len(batch["ordinal"]) == 500
    assert (batch["end_1"] > batch["start_1"]).all()


def test_nref_batch_inserts_cleanly(tiny_nref):
    before = tiny_nref.table("neighboring_seq").row_count
    batch = nref_neighboring_batch(tiny_nref, 200)
    seconds = tiny_nref.insert_rows("neighboring_seq", batch)
    assert seconds > 0
    assert tiny_nref.table("neighboring_seq").row_count == before + 200


def test_tpch_batch_is_fk_consistent(tiny_tpch):
    batch = tpch_lineitem_batch(tiny_tpch, 300)
    orders = set(tiny_tpch.table("orders").column("o_orderkey").tolist())
    assert set(batch["l_orderkey"].tolist()) <= orders
    ps = set(
        zip(
            tiny_tpch.table("partsupp").column("ps_partkey").tolist(),
            tiny_tpch.table("partsupp").column("ps_suppkey").tolist(),
        )
    )
    assert set(
        zip(batch["l_partkey"].tolist(), batch["l_suppkey"].tolist())
    ) <= ps
    assert (batch["l_receiptdate"] > batch["l_shipdate"]).all()


def test_break_even_arithmetic():
    # 1C inserts at 2 ms/tuple, R at 1 ms/tuple; 1C saves 400 s per
    # workload run -> 400 / 0.001 = 400k tuples (the paper's figure).
    assert break_even_inserts(0.002, 0.001, 400.0) == pytest.approx(
        400_000
    )
    # 20 repetitions scale it 20x (the paper's ~10%-of-database reading).
    assert break_even_inserts(0.002, 0.001, 400.0, repetitions=20) == \
        pytest.approx(8_000_000)
    assert break_even_inserts(0.001, 0.002, 400.0) == float("inf")


def test_insert_rates_ordering_with_configs():
    from conftest import load_city_database
    from repro.workload.updates import break_even_inserts as bei

    del bei
    db = load_city_database(n_users=500, n_orders=3000)
    batch = {
        "oid": np.arange(50_000, 50_500),
        "uid": np.arange(500) % 500,
        "city": np.array(["tor"] * 500, dtype=object),
        "amount": np.ones(500, dtype=np.int64),
    }
    db.apply_configuration(primary_configuration(db.catalog))
    p_rate = db.insert_rows("orders", batch) / 500

    db2 = load_city_database(n_users=500, n_orders=3000)
    db2.apply_configuration(one_column_configuration(db2.catalog))
    c_rate = db2.insert_rows("orders", batch) / 500
    assert c_rate > p_rate
