"""Deeper materialized-view semantics: weights through multi-way plans."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.configuration import primary_configuration
from repro.views.matview import (
    COUNT_COLUMN,
    MatViewDefinition,
    ViewColumn,
    build_view,
)

from conftest import load_city_database


@pytest.fixture(scope="module")
def db():
    return load_city_database(n_users=600, n_orders=4000, seed=8)


def test_view_count_sums_match_base(db):
    """Σ cnt over any single-table view equals the base row count."""
    for cols in (("uid",), ("city",), ("uid", "city")):
        view_def = MatViewDefinition(
            tables=("orders",),
            group_columns=tuple(ViewColumn("orders", c) for c in cols),
        )
        table, _ = build_view(view_def, db.tables, db.catalog)
        assert int(table.column(COUNT_COLUMN).sum()) == \
            db.table("orders").row_count


def test_join_view_count_sums_match_join_size(db):
    view_def = MatViewDefinition(
        tables=("users", "orders"),
        join_pred=(("users", "uid"), ("orders", "uid")),
        group_columns=(ViewColumn("users", "city"),),
    )
    table, _ = build_view(view_def, db.tables, db.catalog)
    users = db.table("users")
    freq = collections.Counter(db.table("orders").column("uid").tolist())
    join_size = sum(freq.get(int(u), 0) for u in users.column("uid"))
    assert int(table.column(COUNT_COLUMN).sum()) == join_size


def test_single_alias_view_rewrite_in_join_query(db):
    """A query joining a pre-aggregated alias stays exact."""
    sql = (
        "SELECT u.city, COUNT(*) FROM users u, orders o "
        "WHERE u.city = o.city GROUP BY u.city"
    )
    db.apply_configuration(primary_configuration(db.catalog))
    direct = sorted(db.execute(sql).rows())

    # Pre-aggregate orders down to its city column.
    view_def = MatViewDefinition(
        tables=("orders",),
        group_columns=(ViewColumn("orders", "city"),),
    )
    config = primary_configuration(db.catalog).with_views(
        [view_def], name="V"
    )
    db.apply_configuration(config)
    db.collect_statistics()
    from repro.optimizer.plans import ViewScan, walk

    plan = db.plan(sql)
    rewritten = sorted(db.execute(sql).rows())
    assert rewritten == direct
    assert [n for n in walk(plan) if isinstance(n, ViewScan)], (
        "a 5-row view beats scanning 4000 orders"
    )
    db.apply_configuration(primary_configuration(db.catalog))
    db.collect_statistics()


def test_count_distinct_through_view_rewrite(db):
    """COUNT(DISTINCT x) stays exact when x is a view group column."""
    sql = (
        "SELECT u.city, COUNT(DISTINCT o.city) FROM users u, orders o "
        "WHERE u.uid = o.uid GROUP BY u.city"
    )
    db.apply_configuration(primary_configuration(db.catalog))
    direct = sorted(db.execute(sql).rows())

    view_def = MatViewDefinition(
        tables=("users", "orders"),
        join_pred=(("users", "uid"), ("orders", "uid")),
        group_columns=(
            ViewColumn("users", "city"),
            ViewColumn("orders", "city"),
        ),
    )
    config = primary_configuration(db.catalog).with_views(
        [view_def], name="V"
    )
    db.apply_configuration(config)
    db.collect_statistics()
    rewritten = sorted(db.execute(sql).rows())
    assert rewritten == direct
    db.apply_configuration(primary_configuration(db.catalog))
    db.collect_statistics()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_view_counts_exact_for_random_data(seed):
    """Single-table views reproduce exact counters on arbitrary data."""
    from repro.catalog.catalog import Catalog
    from repro.catalog.schema import ColumnDef, TableSchema
    from repro.storage.table import Table
    from repro.storage.types import integer

    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 300))
    schema = TableSchema("t", [
        ColumnDef("a", integer(), "x"),
        ColumnDef("b", integer(), "y"),
    ])
    catalog = Catalog([schema])
    table = Table(schema, {
        "a": rng.integers(0, 6, n),
        "b": rng.integers(0, 4, n),
    })
    view_def = MatViewDefinition(
        tables=("t",),
        group_columns=(ViewColumn("t", "a"), ViewColumn("t", "b")),
    )
    result, _ = build_view(view_def, {"t": table}, catalog)
    got = {
        (int(a), int(b)): int(c)
        for a, b, c in zip(
            result.column("t__a"),
            result.column("t__b"),
            result.column(COUNT_COLUMN),
        )
    }
    expected = collections.Counter(
        (int(a), int(b))
        for a, b in zip(table.column("a"), table.column("b"))
    )
    assert got == dict(expected)
