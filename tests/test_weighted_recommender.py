"""Bag semantics in the advisor: heavy queries pull the recommendation."""

from repro.engine.configuration import primary_configuration
from repro.recommender.profiles import RecommenderProfile
from repro.recommender.whatif import WhatIfRecommender
from repro.workload.workload import Workload, make_instance

from conftest import load_city_database


def test_weights_steer_index_choice():
    """With a tight budget, the advisor indexes the heavier query."""
    db = load_city_database(n_users=4000, n_orders=30000, seed=17)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))

    uid_query = (
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 "
        "GROUP BY o.city"
    )
    amount_query = (
        "SELECT o.city, COUNT(*) FROM orders o WHERE o.amount = 17 "
        "GROUP BY o.city"
    )
    profile = RecommenderProfile("t", min_improvement=0.0001,
                                 max_selected=1)

    def leading_column(weight_uid, weight_amount):
        workload = Workload("W", [
            make_instance(uid_query, "W", weight=weight_uid),
            make_instance(amount_query, "W", weight=weight_amount),
        ])
        recommender = WhatIfRecommender(db, profile)
        report = recommender.recommend(workload, budget_bytes=10**9)
        assert len(report.selected) == 1
        return report.selected[0].columns[0]

    assert leading_column(50.0, 1.0) == "uid"
    assert leading_column(1.0, 50.0) == "amount"
