"""What-if cost service: memo keys, invalidation, parity, pruning."""

import numpy as np
import pytest

from repro import obs
from repro.engine.configuration import primary_configuration
from repro.index.definition import IndexDefinition
from repro.recommender.costservice import (
    WhatIfCostService,
    query_tables,
    relevant_fingerprint,
    service_enabled,
)
from repro.recommender.profiles import RecommenderProfile
from repro.recommender.whatif import WhatIfRecommender
from repro.runtime.cache import BoundedCache
from repro.workload.workload import Workload, make_instance

from conftest import load_city_database

ORDERS_SQL = (
    "SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = 3 GROUP BY o.city"
)
USERS_SQL = (
    "SELECT u.city, COUNT(*) FROM users u WHERE u.age = 30 GROUP BY u.city"
)


@pytest.fixture
def db():
    db = load_city_database(n_users=2000, n_orders=12000, seed=7)
    db.apply_configuration(primary_configuration(db.catalog, name="P"))
    return db


def workload_of(sqls):
    return Workload(
        "W", [make_instance(sql, "W", i=i) for i, sql in enumerate(sqls)]
    )


def orders_trial(db):
    return db.configuration.with_indexes(
        [IndexDefinition(table="orders", columns=("uid",))]
    )


# ----------------------------------------------------------------------
# Enablement knob

def test_service_enabled_flag_and_env(monkeypatch):
    assert service_enabled(True) is True
    assert service_enabled(False) is False
    monkeypatch.delenv("REPRO_WHATIF_CACHE", raising=False)
    assert service_enabled() is True
    for value in ("0", "false", "NO", " off "):
        monkeypatch.setenv("REPRO_WHATIF_CACHE", value)
        assert service_enabled() is False
    monkeypatch.setenv("REPRO_WHATIF_CACHE", "1")
    assert service_enabled() is True


# ----------------------------------------------------------------------
# The atomic (relevant-subset) cache key

def test_relevant_fingerprint_ignores_unrelated_structures(db):
    bound = db.bind(ORDERS_SQL)
    assert query_tables(bound) == {"orders"}
    trial = orders_trial(db)
    baseline = relevant_fingerprint(bound, trial, db.catalog)
    # An index on a table the query never touches must not change the key
    # (this is exactly what makes round-2 lookups hit after an unrelated
    # structure was selected in round 1) ...
    noisy = trial.with_indexes(
        [IndexDefinition(table="users", columns=("age",))]
    )
    assert relevant_fingerprint(bound, noisy, db.catalog) == baseline
    # ... and so must one the planner cannot use: orders.city neither
    # matches the equality filter (uid) nor covers {uid, city} ...
    unusable = trial.with_indexes(
        [IndexDefinition(table="orders", columns=("city",))]
    )
    assert relevant_fingerprint(bound, unusable, db.catalog) == baseline
    # ... while a covering index on the query's table changes the key.
    covering = trial.with_indexes(
        [IndexDefinition(table="orders", columns=("city", "uid"))]
    )
    assert relevant_fingerprint(bound, covering, db.catalog) != baseline


def test_service_memoizes_and_counts(db):
    service = WhatIfCostService(db)
    trial = orders_trial(db)
    first = service.costs([ORDERS_SQL], trial)
    assert service.stats()["misses"] == 1
    again = service.costs([ORDERS_SQL], trial)
    assert again == first
    assert service.stats()["hits"] == 1
    # The memo lives on the database, so a second service instance hits.
    other = WhatIfCostService(db)
    assert other.costs([ORDERS_SQL], trial) == first
    assert other.stats() == {"hits": 1, "misses": 0, "hit_rate": 1.0}


def test_service_costs_match_direct_estimates(db):
    service = WhatIfCostService(db)
    trial = orders_trial(db)
    direct = [
        db.estimate_hypothetical(sql, trial, force_hypothetical=True)
        for sql in (ORDERS_SQL, USERS_SQL)
    ]
    assert service.costs([ORDERS_SQL, USERS_SQL], trial) == direct
    # Cache hits return the same values again.
    assert service.costs([ORDERS_SQL, USERS_SQL], trial) == direct


def test_cache_hits_across_unrelated_growth(db):
    """Round-2 repricing after an unrelated selection is pure cache hits."""
    service = WhatIfCostService(db)
    trial = orders_trial(db)
    first = service.costs([ORDERS_SQL], trial)
    grown = trial.with_indexes(
        [IndexDefinition(table="users", columns=("age",))]
    )
    assert service.costs([ORDERS_SQL], grown) == first
    assert service.stats()["hits"] == 1


# ----------------------------------------------------------------------
# Invalidation: every mutation that invalidates plans drops the memo

def _prime(db):
    service = WhatIfCostService(db)
    trial = orders_trial(db)
    service.costs([ORDERS_SQL], trial)
    snapshot = db.cache_stats()["whatif_cache"]
    assert snapshot["misses"] >= 1
    return service, trial


def test_apply_configuration_invalidates(db):
    _prime(db)
    before = db.cache_stats()["whatif_cache"]["invalidations"]
    db.apply_configuration(orders_trial(db).renamed("R"))
    after = db.cache_stats()["whatif_cache"]["invalidations"]
    assert after > before


def test_insert_rows_invalidates_and_recomputes(db):
    service, trial = _prime(db)
    stale = service.costs([ORDERS_SQL], trial)
    n = 6000
    db.insert_rows(
        "orders",
        {
            "oid": np.arange(100000, 100000 + n),
            "uid": np.full(n, 3),
            "city": np.array(["tor"] * n, dtype=object),
            "amount": np.ones(n, dtype=np.int64),
        },
    )
    db.collect_statistics()
    fresh = service.costs([ORDERS_SQL], trial)
    assert fresh != stale, (
        "post-insert costs must be recomputed, not served stale"
    )


def test_collect_statistics_invalidates(db):
    _prime(db)
    before = db.cache_stats()["whatif_cache"]["invalidations"]
    db.collect_statistics()
    assert db.cache_stats()["whatif_cache"]["invalidations"] > before


# ----------------------------------------------------------------------
# Recommender parity and the optimization counters

def test_cached_and_uncached_recommendations_identical(db):
    sqls = [
        f"SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = {u} "
        f"GROUP BY o.city"
        for u in (3, 17, 99)
    ] + [USERS_SQL]
    profile = RecommenderProfile("t", min_improvement=0.001)
    reports = {}
    for cached in (False, True):
        fresh = load_city_database(n_users=2000, n_orders=12000, seed=7)
        fresh.apply_configuration(
            primary_configuration(fresh.catalog, name="P")
        )
        recommender = WhatIfRecommender(fresh, profile, use_cache=cached)
        reports[cached] = recommender.recommend(
            workload_of(sqls), budget_bytes=10**9, name="R"
        )
    assert (
        reports[True].configuration.fingerprint
        == reports[False].configuration.fingerprint
    )
    assert reports[True].estimated_cost == reports[False].estimated_cost
    assert reports[True].base_cost == reports[False].base_cost
    assert reports[True].selected == reports[False].selected


def test_recommender_emits_service_counters(db):
    sqls = [ORDERS_SQL, USERS_SQL]
    with obs.recording() as recorder:
        recommender = WhatIfRecommender(
            db, RecommenderProfile("t", min_improvement=0.001),
            use_cache=True,
        )
        recommender.recommend(workload_of(sqls), budget_bytes=10**9)
    counters = recorder.metrics.snapshot()["counters"]
    assert counters.get("recommender.whatif_cache.misses", 0) > 0
    assert counters.get("recommender.whatif_cache.hits", 0) > 0, (
        "greedy rounds re-price candidates: some lookups must hit"
    )
    assert counters.get("optimizer.env_delta_builds", 0) > 0, (
        "candidate trials should extend the current env incrementally"
    )


def test_upper_bound_pruning_skips_cheap_candidates(db):
    # The users query is a tiny fraction of the workload cost, so with a
    # high improvement threshold every users-only candidate has an upper
    # bound (the users query's entire cost) below the round threshold.
    sqls = [ORDERS_SQL] * 6 + [USERS_SQL]
    with obs.recording() as recorder:
        recommender = WhatIfRecommender(
            db, RecommenderProfile("t", min_improvement=0.2),
            use_cache=True,
        )
        recommender.recommend(workload_of(sqls), budget_bytes=10**9)
    counters = recorder.metrics.snapshot()["counters"]
    assert counters.get("recommender.candidates_pruned", 0) > 0


def test_parallel_candidate_search_matches_serial(db):
    sqls = [
        f"SELECT o.city, COUNT(*) FROM orders o WHERE o.uid = {u} "
        f"GROUP BY o.city"
        for u in (3, 17, 99)
    ] + [USERS_SQL]
    profile = RecommenderProfile("t", min_improvement=0.001)
    fingerprints = {}
    for jobs in (1, 4):
        fresh = load_city_database(n_users=2000, n_orders=12000, seed=7)
        fresh.apply_configuration(
            primary_configuration(fresh.catalog, name="P")
        )
        from repro.runtime.session import MeasurementSession

        with MeasurementSession(fresh, jobs=jobs) as session:
            recommender = WhatIfRecommender(
                fresh, profile, session=session, use_cache=True
            )
            report = recommender.recommend(
                workload_of(sqls), budget_bytes=10**9, name="R"
            )
        fingerprints[jobs] = report.configuration.fingerprint
    assert fingerprints[1] == fingerprints[4]


# ----------------------------------------------------------------------
# Satellites: BoundedCache.peek, Table.byte_size memo

def test_bounded_cache_peek_does_not_touch_stats_or_lru():
    cache = BoundedCache("t", maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1
    assert cache.peek("zzz", "fallback") == "fallback"
    stats = cache.stats.snapshot()
    assert stats["hits"] == 0 and stats["misses"] == 0
    # peek must not refresh recency: "a" is still the eviction victim.
    cache.put("c", 3)
    assert cache.peek("a") is None
    assert cache.peek("b") == 2


def test_table_byte_size_cached_and_invalidated(db):
    table = db.table("orders")
    first = table.byte_size()
    assert table.byte_size() is first or table.byte_size() == first
    assert table._byte_size == first
    n = 10
    db.insert_rows(
        "orders",
        {
            "oid": np.arange(900000, 900000 + n),
            "uid": np.zeros(n, dtype=np.int64),
            "city": np.array(["tor"] * n, dtype=object),
            "amount": np.ones(n, dtype=np.int64),
        },
    )
    assert table.byte_size() == first + n * table.schema.row_width()
