"""Query families, constant selection, and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.constants import (
    frequency_ladder,
    selectivity_ladder,
    sql_literal,
)
from repro.workload.nref_families import generate_nref2j, generate_nref3j
from repro.workload.sampling import stratified_sample
from repro.workload.tpch_families import (
    generate_skth3j,
    generate_skth3js,
    generate_unth3j,
)
from repro.workload.workload import Workload, make_instance


def test_sql_literal_rendering():
    assert sql_literal(5) == "5"
    assert sql_literal("x'y") == "'x''y'"
    assert sql_literal(2.5) == "2.5"


def test_selectivity_ladder_orders_of_magnitude():
    rng = np.random.default_rng(0)
    # 200 singletons, one value 10x, one value 100x.
    values = (
        [f"u{i}" for i in range(200)] + ["ten"] * 10 + ["hundred"] * 100
    )
    rng.shuffle(values)
    ladder = selectivity_ladder(values)
    assert ladder[0][1] == 1
    assert [f for _, f in ladder] == [1, 10, 100]


def test_selectivity_ladder_flat_column():
    ladder = selectivity_ladder(["a", "b", "c", "d"])
    assert len(ladder) == 1
    assert ladder[0][1] == 1


def test_frequency_ladder_real_frequencies():
    values = ["a"] * 1 + ["b"] * 10 + ["c"] * 10 + ["d"] * 100
    ladder = frequency_ladder(values)
    counts = {1, 10, 100}
    assert set(ladder) <= counts
    assert ladder[0] == 1


def test_nref_families_shape(tiny_nref):
    w2 = generate_nref2j(tiny_nref)
    w3 = generate_nref3j(tiny_nref)
    assert len(w2) > 30
    assert len(w3) > 30
    for q in list(w2)[:20]:
        assert "HAVING COUNT(*) < 4" in q.sql
        assert q.family == "NREF2J"
        bound = tiny_nref.bind(q.sql)
        assert len(bound.relations) == 2
        assert len(bound.semijoins) == 2
    for q in list(w3)[:20]:
        bound = tiny_nref.bind(q.sql)
        assert len(bound.relations) == 3
        tables = list(bound.relations.values())
        assert tables[0] == tables[1], "NREF3J queries self-join R"
        assert bound.filters, "NREF3J queries carry a constant"


def test_nref3j_constants_span_magnitudes(tiny_nref):
    w3 = generate_nref3j(tiny_nref)
    freqs = {}
    for q in w3:
        meta = q.meta_dict()
        key = (meta["s"], meta["c4"], meta["group_by"], meta["c1"])
        freqs.setdefault(key, []).append(int(meta["constant_freq"]))
    ladders = [sorted(v) for v in freqs.values() if len(v) >= 2]
    assert ladders
    assert any(v[-1] >= 8 * v[0] for v in ladders), (
        "some ladder should span about an order of magnitude"
    )


def test_tpch_families_shape(tiny_tpch):
    w = generate_skth3j(tiny_tpch)
    ws = generate_skth3js(tiny_tpch)
    assert len(w) > len(ws)
    simple_tables = {"lineitem", "orders", "partsupp"}
    for q in ws:
        meta = q.meta_dict()
        assert {meta["r"], meta["s"], meta["t"]} <= simple_tables
        assert meta["theta"] == "eq"
    assert any(q.meta_dict()["theta"] == "freq" for q in w)
    for q in list(w)[:20]:
        bound = tiny_tpch.bind(q.sql)
        assert len(bound.relations) == 3


def test_unth3j_uses_same_template(tiny_tpch):
    w = generate_unth3j(tiny_tpch)
    assert all(q.family == "UnTH3J" for q in w)
    assert len(w) > 0


def test_all_family_queries_parse_and_bind(tiny_nref, tiny_tpch):
    for db, gen in (
        (tiny_nref, generate_nref2j),
        (tiny_nref, generate_nref3j),
        (tiny_tpch, generate_skth3j),
        (tiny_tpch, generate_skth3js),
    ):
        workload = gen(db)
        for q in workload:
            db.bind(q.sql)     # raises on any invalid query


def test_stratified_sample_preserves_distribution():
    rng = np.random.default_rng(1)
    queries = [
        make_instance(f"SELECT {i} FROM t", "F", i=i) for i in range(1000)
    ]
    workload = Workload("F", queries)
    # 80% fast (~1s), 20% slow (~100s).
    costs = np.where(rng.random(1000) < 0.8, 1.0, 100.0)
    sample = stratified_sample(workload, costs, size=100, seed=7)
    assert len(sample) == 100
    cost_of = {q.sql: c for q, c in zip(queries, costs)}
    sampled_costs = np.array([cost_of[q.sql] for q in sample])
    slow_fraction = np.mean(sampled_costs > 10)
    assert 0.1 <= slow_fraction <= 0.3


def test_stratified_sample_small_family_returns_all():
    queries = [make_instance(f"q{i}", "F") for i in range(30)]
    workload = Workload("F", queries)
    sample = stratified_sample(workload, np.ones(30), size=100)
    assert len(sample) == 30


def test_stratified_sample_deterministic():
    queries = [make_instance(f"q{i}", "F") for i in range(500)]
    workload = Workload("F", queries)
    costs = np.arange(1, 501, dtype=float)
    a = stratified_sample(workload, costs, size=50, seed=3)
    b = stratified_sample(workload, costs, size=50, seed=3)
    assert a.sqls() == b.sqls()
    c = stratified_sample(workload, costs, size=50, seed=4)
    assert a.sqls() != c.sqls()


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 400),
    size=st.integers(1, 120),
    seed=st.integers(0, 10_000),
)
def test_property_sample_size_and_membership(n, size, seed):
    queries = [make_instance(f"q{i}", "F") for i in range(n)]
    workload = Workload("F", queries)
    rng = np.random.default_rng(seed)
    costs = rng.lognormal(2, 2, n)
    sample = stratified_sample(workload, costs, size=size, seed=seed)
    assert len(sample) == min(size, n)
    sqls = sample.sqls()
    assert len(set(sqls)) == len(sqls), "no duplicates"
    assert set(sqls) <= {q.sql for q in queries}


def test_sample_rejects_mismatched_costs():
    workload = Workload("F", [make_instance("q", "F")])
    with pytest.raises(ValueError):
        stratified_sample(workload, [1.0, 2.0], size=1)
